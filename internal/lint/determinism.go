package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the bit-determinism invariant of the pipeline
// packages: results must be identical run-to-run and at every worker
// count, so nothing in them may read the wall clock, draw from the
// shared global math/rand source, or let map-iteration order reach an
// output sequence.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, global math/rand, or map-iteration order feeding output in deterministic packages",
	Run:  runDeterminism,
}

// randConstructors are the package-level math/rand functions that build
// explicitly seeded sources instead of drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !p.Cfg.Deterministic(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if recvOf(fn) != nil {
				return true // method calls (e.g. *rand.Rand, time.Time) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					p.Reportf(call.Pos(), "time.%s reads the wall clock and breaks bit-determinism; pass explicit times or measure outside the deterministic packages", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					p.Reportf(call.Pos(), "global %s.%s draws from a shared nondeterministic source; use stats.RNG jump substreams instead", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
		checkMapRangeOrdering(p, f)
	}
}

// recvOf returns fn's receiver, or nil for package-level functions.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// calleeFunc resolves the called function of a call expression, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// checkMapRangeOrdering flags range-over-map loops whose body feeds an
// ordered output: appending to a slice declared outside the loop (unless
// that slice is sorted later in the same function) or writing directly
// to an output sink. Pure aggregations (sums, counts, building another
// map) are inherently order-independent and pass.
func checkMapRangeOrdering(p *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sorted := sortedObjects(p, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					obj := appendTarget(p, m)
					if obj != nil && !within(rng, obj.Pos()) && !sorted[obj] {
						p.Reportf(m.Pos(), "append inside range over map feeds output ordering from nondeterministic iteration; collect and sort keys first (or sort %s afterwards)", obj.Name())
					}
				case *ast.CallExpr:
					if isOutputCall(p, m) {
						p.Reportf(m.Pos(), "output written inside range over map inherits nondeterministic iteration order; iterate a sorted key slice instead")
					}
				}
				return true
			})
			return true
		})
	}
}

// appendTarget returns the assigned object of an `x = append(x, ...)`
// statement, or nil.
func appendTarget(p *Pass, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(lhs)
}

// within reports whether pos falls inside node's source span.
func within(n ast.Node, pos token.Pos) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// sortedObjects collects the objects passed as first argument to a
// sort.* or slices.Sort* call anywhere in the body: appends feeding
// those slices are order-safe because the sort erases insertion order.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") && !isSortHelper(fn.Name()) {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isSortHelper matches the sort package's slice-ordering helpers that do
// not start with "Sort" (sort.Ints, sort.Strings, ...).
func isSortHelper(name string) bool {
	switch name {
	case "Ints", "Float64s", "Strings", "Slice", "SliceStable", "Stable":
		return true
	}
	return false
}

// isOutputCall reports whether call writes to an ordered output sink:
// an fmt print/fprint, or a Write*/AddRow* method.
func isOutputCall(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if recvOf(fn) != nil {
		switch {
		case strings.HasPrefix(fn.Name(), "Write"), strings.HasPrefix(fn.Name(), "AddRow"):
			return true
		}
	}
	return false
}
