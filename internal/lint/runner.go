package lint

import (
	"context"
	"sort"

	"nwdec/internal/par"
)

// Run applies the analyzers to every package serially and returns the
// surviving diagnostics in deterministic order. It is the workers = 1
// form of RunParallel, kept as the convenience surface for the
// per-package lint self-tests.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	diags, err := RunParallel(context.Background(), 1, pkgs, analyzers, cfg)
	if err != nil {
		// The only error source is context cancellation, and the
		// background context cannot be cancelled.
		panic("lint: serial run failed: " + err.Error())
	}
	return diags
}

// RunParallel applies the analyzers to every package and returns the
// surviving diagnostics sorted by position. Packages are analyzed in
// dependency order — a package runs only after every package it imports
// (within the analyzed set) has finished, so imported facts are always
// complete — and packages with no ordering constraint between them run
// concurrently on a bounded par pool. Diagnostic output is byte-identical
// at every worker count: each package collects into its own slice and
// the merged stream is fully ordered (file, line, column, rule, message).
//
// Suppression directives (//nwlint:ignore rule reason) are honored per
// package; malformed directives are reported under the pseudo-rule
// "ignore", and well-formed directives that no longer suppress any
// diagnostic of the rules that ran are reported as stale, with a
// suggested fix that deletes them.
func RunParallel(ctx context.Context, workers int, pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	diags, _, err := RunParallelFacts(ctx, workers, pkgs, analyzers, cfg)
	return diags, err
}

// RunParallelFacts is RunParallel, additionally returning the flattened
// fact store — the cmd/nwlint -facts dump, and the hook tests use to
// assert cross-package fact flow.
func RunParallelFacts(ctx context.Context, workers int, pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, []FactLine, error) {
	store := newFactStore(pkgs)
	perPkg := make([][]Diagnostic, len(pkgs))

	for _, wave := range waves(pkgs) {
		wave := wave
		err := par.ForEach(ctx, workers, wave, func(_ context.Context, _ int, i int) error {
			perPkg[i] = analyze(pkgs[i], analyzers, cfg, store)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return diags, store.summary(), nil
}

// analyze runs every analyzer over one package and applies the
// suppression pass. It touches only its own pass state, the package's
// pre-created fact set, and — read-only — the completed fact sets of the
// package's dependencies, so concurrent calls over independent packages
// are race-free.
func analyze(pkg *Package, analyzers []*Analyzer, cfg *Config, store *factStore) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Fset:  pkg.Fset,
		Path:  pkg.Path,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
		Files: pkg.Files,
		Cfg:   cfg,
		diags: &diags,
		store: store,
		facts: store.byPkg[pkg.Types],
	}
	for _, a := range analyzers {
		pass.rule = a.Name
		a.Run(pass)
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	return suppress(pkg, diags, ran)
}

// waves groups the packages into dependency levels: wave k holds the
// packages whose analyzed dependencies all sit in waves < k, so the
// waves can run one after another with full parallelism inside each.
// Indices within a wave are ordered by package path, which (with the
// final diagnostic sort) keeps the whole pipeline deterministic.
func waves(pkgs []*Package) [][]int {
	index := make(map[string]int, len(pkgs))
	for i, pkg := range pkgs {
		index[pkg.Types.Path()] = i
	}
	depth := make([]int, len(pkgs))
	for i := range depth {
		depth[i] = -1
	}
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if depth[i] >= 0 {
			return depth[i]
		}
		depth[i] = 0 // cycles are impossible in a type-checked import graph
		d := 0
		for _, imp := range pkgs[i].Types.Imports() {
			if j, ok := index[imp.Path()]; ok && j != i {
				if dj := depthOf(j) + 1; dj > d {
					d = dj
				}
			}
		}
		depth[i] = d
		return d
	}
	maxDepth := 0
	for i := range pkgs {
		if d := depthOf(i); d > maxDepth {
			maxDepth = d
		}
	}
	out := make([][]int, maxDepth+1)
	for i := range pkgs {
		out[depth[i]] = append(out[depth[i]], i)
	}
	for _, wave := range out {
		sort.Slice(wave, func(a, b int) bool { return pkgs[wave[a]].Path < pkgs[wave[b]].Path })
	}
	return out
}
