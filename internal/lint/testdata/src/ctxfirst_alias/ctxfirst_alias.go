// Package aliasctx is the regression fixture for the type-checked
// context detection of ctxfirst: a renamed import and a type alias must
// resolve to context.Context exactly like the plain spelling — both for
// the position rule and for satisfying the long-running-entry-point
// requirement (the fixture is analyzed under internal/sweep, a
// CtxEntry package).
package aliasctx

import (
	stdctx "context"
)

// Ctx aliases context.Context; the type checker sees through it.
type Ctx = stdctx.Context

// Renamed hides the context behind a renamed import.
func Renamed(n int, ctx stdctx.Context) error { // want `ctxfirst: context.Context must be the first parameter`
	_ = ctx
	return nil
}

// Aliased hides the context behind a type alias.
func Aliased(n int, ctx Ctx) error { // want `ctxfirst: context.Context must be the first parameter`
	_ = ctx
	return nil
}

// RunAll is a long-running entry point with no context at all.
func RunAll(n int) error { // want `ctxfirst: long-running entry point RunAll must accept a context.Context`
	return nil
}

// SimWorkers accepts its context through the alias: the entry-point
// requirement is satisfied through the type checker, not the spelling.
func SimWorkers(ctx Ctx, workers int) error {
	_ = ctx
	_ = workers
	return nil
}
