// Package atomicdef defines a struct whose Hits field is accessed
// through the legacy sync/atomic package-level functions, seeding one
// local mixed plain access. The atomicfield pass over this package
// exports an AtomicFieldFact for Hits; the atomicuse fixture imports
// this package and proves the fact flows downstream.
package atomicdef

import "sync/atomic"

// Counters is a hot-path counter block in the legacy address-of style.
type Counters struct {
	Hits  int64
	Total int64
}

// Record bumps the counter atomically — this marks Hits.
func (c *Counters) Record() {
	atomic.AddInt64(&c.Hits, 1)
}

// Snapshot reads the counter atomically — fine.
func (c *Counters) Snapshot() int64 {
	return atomic.LoadInt64(&c.Hits)
}

// Mixed reads the marked field without the atomic API.
func (c *Counters) Mixed() int64 {
	return c.Hits // want `atomicfield: field Hits is accessed via sync/atomic elsewhere`
}

// PlainTotal reads a field no one touches atomically — clean.
func (c *Counters) PlainTotal() int64 {
	return c.Total
}
