// Package ctxf seeds deliberate violations of the ctxfirst rule.
package ctxf

import "context"

// Bad takes its context second.
func Bad(name string, ctx context.Context) error { // want `ctxfirst: context.Context must be the first parameter`
	_ = name
	return ctx.Err()
}

// Good takes its context first.
func Good(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// SweepWorkers is a parallel entry point without a context.
func SweepWorkers(cfg, workers int) error { // want `ctxfirst: long-running entry point SweepWorkers must accept a context.Context`
	_ = cfg + workers
	return nil
}

// FanOut has a worker-pool parameter without a context.
func FanOut(n int, workers int) error { // want `ctxfirst: long-running entry point FanOut must accept a context.Context`
	_ = n + workers
	return nil
}

// Runner mirrors the experiments driver shape.
type Runner struct{}

// Run is a registry driver without a context.
func (r Runner) Run(name string) error { // want `ctxfirst: long-running entry point Run must accept a context.Context`
	_ = name
	return nil
}

// RunAll is a cancellable driver, which is fine.
func (r Runner) RunAll(ctx context.Context) error {
	return ctx.Err()
}

// fan is unexported, so the entry-point requirement does not apply.
func fan(workers int) error {
	_ = workers
	return nil
}

var _ = fan
