// Package stale pins the stale-directive detection: the first directive
// suppresses a live determinism violation and survives; the second
// suppresses nothing and must be reported (with a deletion fix).
package stale

import "time"

// Now carries a live suppression.
func Now() int64 {
	//nwlint:ignore determinism boot stamp for logs, never enters results
	return time.Now().Unix()
}

//nwlint:ignore determinism the clock read below was removed long ago
func Pure() int {
	return 1
}
