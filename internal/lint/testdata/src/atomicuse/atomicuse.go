// Package atomicuse imports atomicdef and accesses its atomically
// marked field without the atomic API: the violation is only visible
// through the AtomicFieldFact the defining package's pass exported, so
// this fixture pins the cross-package fact flow.
package atomicuse

import "nwdec/internal/atomicdef"

// Leak reads the marked field plainly from a downstream package.
func Leak(c *atomicdef.Counters) int64 {
	return c.Hits // want `atomicfield: field Hits is accessed via sync/atomic elsewhere`
}

// Sum reads the unmarked field — clean across packages too.
func Sum(c *atomicdef.Counters) int64 {
	return c.Total
}
