// Package sup exercises the //nwlint:ignore suppression mechanics: a
// well-formed directive (rule + reason) silences the diagnostic on its
// own line or the line below; a directive without a reason is itself
// reported and suppresses nothing.
package sup

import "time"

// Stamp carries a justified suppression: no diagnostic survives.
func Stamp() int64 {
	//nwlint:ignore determinism fixture pins the suppression mechanics
	return time.Now().Unix()
}

// Inline carries the directive on the offending line itself.
func Inline() int64 {
	return time.Now().Unix() //nwlint:ignore determinism fixture pins same-line suppression
}

// Unjustified omits the reason, so the directive is malformed and the
// diagnostic survives.
func Unjustified() int64 {
	//nwlint:ignore determinism
	return time.Now().Unix()
}
