// Package par mirrors the nogoroutine fixture, but is loaded under the
// internal/par path where goroutine creation is the whole point.
package par

import "sync"

// Fan spawns goroutines inside the one package allowed to.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
