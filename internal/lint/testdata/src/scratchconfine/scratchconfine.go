// Package scratch seeds scratch-confinement violations of the chunked
// hot path against the real internal/par entry points, plus the clean
// arena-view and element-read patterns the rule must not flag.
package scratch

import (
	"context"

	"nwdec/internal/par"
)

var published []float64

type recorder struct {
	last []float64
}

type chunkErr struct {
	sample []float64
}

func (e *chunkErr) Error() string { return "chunk failed" }

// EscapeGlobal stores block scratch into a package global.
func EscapeGlobal(ctx context.Context, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		buf := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			buf = append(buf, float64(i))
		}
		published = buf // want `scratchconfine: chunk-local scratch buf escapes the par block through a store to published`
		return nil
	})
}

// EscapeField stores block scratch into a field of a captured struct.
func EscapeField(ctx context.Context, r *recorder, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		row := make([]float64, hi-lo)
		r.last = row // want `scratchconfine: chunk-local scratch row escapes the par block through a store to r`
		return nil
	})
}

// EscapeChannel sends block scratch over a captured channel.
func EscapeChannel(ctx context.Context, out chan []float64, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		tmp := []float64{float64(lo), float64(hi)}
		out <- tmp // want `scratchconfine: chunk-local scratch tmp escapes the par block through a channel send`
		return nil
	})
}

// EscapeReturn smuggles block scratch out through the error path of a
// ForEach* block closure.
func EscapeReturn(ctx context.Context, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		probe := make([]float64, 8)
		for i := lo; i < hi; i++ {
			if i%7 == 0 {
				return &chunkErr{sample: probe} // want `scratchconfine: chunk-local scratch probe escapes the par block through a return`
			}
		}
		return nil
	})
}

// EscapeGoroutine hands block scratch to a goroutine that may outlive
// the chunk (the go statement itself is a nogoroutine violation too;
// this fixture runs only scratchconfine).
func EscapeGoroutine(ctx context.Context, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		work := make([]float64, hi-lo)
		go func() { // want `scratchconfine: chunk-local scratch work is captured by a goroutine`
			work[0] = 1
		}()
		return nil
	})
}

// ArenaView writes through a slice view of a caller-owned arena: the
// positional-ownership pattern of DESIGN §11, not scratch — clean.
func ArenaView(ctx context.Context, arena []float64, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		out := arena[lo:hi]
		for i := range out {
			out[i] = float64(lo + i)
		}
		return nil
	})
}

// ElementRead copies element values out of reused block scratch into a
// caller-owned arena; the buffer itself stays confined — clean.
func ElementRead(ctx context.Context, totals []float64, n int) error {
	return par.ForEachChunks(ctx, 4, n, 64, func(ctx context.Context, lo, hi int) error {
		acc := make([]float64, 1)
		for i := lo; i < hi; i++ {
			acc[0] += float64(i)
			totals[i] = acc[0]
		}
		return nil
	})
}

// PerItemResult returns a buffer the invocation just allocated from a
// Map* per-item callback: the sanctioned result hand-off — clean.
func PerItemResult(ctx context.Context, n int) ([][]float64, error) {
	return par.MapNChunked(ctx, 4, n, 64, func(ctx context.Context, i int) ([]float64, error) {
		buf := make([]float64, 4)
		buf[0] = float64(i)
		return buf, nil
	})
}
