// Package obsfixture is analyzed under the internal/obs path and seeds
// both violation shapes of the layering table: an import the package's
// Deny row forbids (obs must sit below the execution layer) and an
// import of a renderer whose Importers row does not list obs.
package obsfixture

import (
	_ "nwdec/internal/par"      // want `layering: internal/obs must not import internal/par`
	_ "nwdec/internal/textplot" // want `layering: internal/obs may not import internal/textplot`
)
