// Package nogo seeds deliberate violations of the nogoroutine rule.
package nogo

import "sync"

// Fan spawns raw goroutines outside internal/par.
func Fan(n int) {
	var wg sync.WaitGroup // want `nogoroutine: sync.WaitGroup is contained in internal/par`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `nogoroutine: goroutine creation is contained in internal/par`
			defer wg.Done()
		}()
	}
	wg.Wait()
}
