// Package enginefixture is analyzed under the internal/engine path and
// seeds every wire-parity violation shape: an identity field missing
// from the wire struct, the excluded Workers field crossing the wire, a
// wire field with no identity counterpart, and a marshal literal that
// silently zeroes a field.
package enginefixture

// Request is the identity struct of the WireParity table row.
type Request struct {
	Rows    int
	Cols    int
	Pitch   float64
	Station string // want `wireparity: wire parity: identity field Request.Station is missing from wireRequest`
	Workers int
}

type wireRequest struct { // want `wireparity: wire parity: excluded field Request.Workers crosses the wire through wireRequest`
	Rows    int
	Cols    int
	Pitch   float64
	Workers int
	Legacy  int // want `wireparity: wire parity: wireRequest.Legacy has no identity counterpart in Request`
}

// MarshalWire forgets Pitch, which would zero it on every peer.
func (r Request) MarshalWire() wireRequest {
	return wireRequest{ // want `wireparity: wire parity: MarshalWire's wireRequest literal does not set Pitch`
		Rows: r.Rows,
		Cols: r.Cols,
	}
}

// UnmarshalWire sets every surviving field — clean.
func (w wireRequest) UnmarshalWire() Request {
	return Request{
		Rows:  w.Rows,
		Cols:  w.Cols,
		Pitch: w.Pitch,
	}
}
