// Package pb seeds deliberate violations of the printbound rule.
package pb

import (
	"fmt"
	"os"
)

// Announce prints from a library package.
func Announce(msg string) {
	fmt.Println(msg) // want `printbound: fmt.Println writes to stdout from a library package`
}

// Direct writes to os.Stdout from a library package.
func Direct(msg string) {
	fmt.Fprintf(os.Stdout, "%s\n", msg) // want `printbound: os.Stdout referenced from a library package`
}

// Debug uses the print builtin.
func Debug(msg string) {
	println(msg) // want `printbound: builtin println writes to stderr from a library package`
}

// Render returns data instead, which is fine.
func Render(msg string) string {
	return fmt.Sprintf("%s\n", msg)
}
