// Command fixture mirrors the printbound fixture from a main package,
// where printing is the job.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("ok")
	fmt.Fprintf(os.Stdout, "%s\n", "ok")
}
