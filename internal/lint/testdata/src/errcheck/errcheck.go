// Package errs seeds deliberate violations of the errcheck rule.
package errs

import (
	"fmt"
	"os"
	"strings"
)

// Bare discards the error of a statement-position call.
func Bare(name string) {
	os.Remove(name) // want `errcheck: error result of call to os.Remove is discarded`
}

// Blank discards the error through the blank identifier.
func Blank(f *os.File) {
	_ = f.Close() // want `errcheck: error result of f.Close is assigned to _`
}

// BlankTuple discards the error position of a tuple result.
func BlankTuple(f *os.File, b []byte) int {
	n, _ := f.Write(b) // want `errcheck: error result of f.Write is assigned to _`
	return n
}

// Deferred discards the error of a deferred call.
func Deferred(f *os.File) {
	defer f.Close() // want `errcheck: error result of deferred call to f.Close is discarded`
}

// Wrap formats an error cause without wrapping it.
func Wrap(err error) error {
	return fmt.Errorf("load: %v", err) // want `errcheck: fmt.Errorf formats an error cause without %w`
}

// WrapOK wraps its cause, which is fine.
func WrapOK(err error) error {
	return fmt.Errorf("load: %w", err)
}

// Builder writes to in-memory sinks, which never fail.
func Builder() string {
	var sb strings.Builder
	sb.WriteString("ok")
	fmt.Fprintf(&sb, "%d", 1)
	return sb.String()
}

// Console writes to stderr, where the error has no recovery.
func Console() {
	fmt.Fprintln(os.Stderr, "ok")
}
