// Package det seeds deliberate violations of the determinism rule.
package det

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	t := time.Now() // want `determinism: time.Now reads the wall clock`
	return t.Unix()
}

// Elapsed measures wall-clock duration.
func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `determinism: time.Since reads the wall clock`
}

// Draw samples the shared global source.
func Draw() float64 {
	return rand.Float64() // want `determinism: global rand.Float64 draws from a shared nondeterministic source`
}

// Pick samples the shared global source.
func Pick(n int) int {
	return rand.Intn(n) // want `determinism: global rand.Intn draws from a shared nondeterministic source`
}

// Seeded builds an explicitly seeded source, which is fine.
func Seeded() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

// Keys feeds map-iteration order straight into a slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `determinism: append inside range over map feeds output ordering`
	}
	return out
}

// SortedKeys erases the iteration order with a sort, which is fine.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum aggregates commutatively, which is fine.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Dump writes output in map-iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `determinism: output written inside range over map`
	}
}
