// Package fixes is the input of the auto-fix golden test: an Errorf
// that loses its cause (fixable to %w) and a stale suppression
// directive (fixable by deletion).
package fixes

import (
	"fmt"
)

// Decode loses the cause behind %v.
func Decode(err error) error {
	return fmt.Errorf("decode row %d failed: %v", 3, err)
}

//nwlint:ignore determinism the wall-clock read here is long gone
func Rows() int {
	return 128
}
