package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// FileFix is the computed rewrite of one file: the original content, the
// content with every applicable suggested fix applied, and how many
// fixes landed. Old and New differ for every returned FileFix.
type FileFix struct {
	// Path is the file name as recorded in the file set.
	Path string
	// Old is the file content the fixes were computed against.
	Old []byte
	// New is the content with the fixes applied.
	New []byte
	// Applied counts the suggested fixes that were applied.
	Applied int
}

// ApplyFixes computes the per-file rewrites for every diagnostic that
// carries a suggested fix. Nothing is written: callers decide whether to
// persist (nwlint -fix) or preview (nwlint -diff). Edits are applied in
// ascending offset order; a fix whose edits overlap an already-applied
// fix is skipped rather than corrupting the file, and files are returned
// sorted by path so output order is deterministic.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) ([]FileFix, error) {
	type edit struct {
		start, end int
		text       string
	}
	type fix struct {
		edits []edit
	}
	byFile := make(map[string][]fix)
	for _, d := range diags {
		for _, sf := range d.Fixes {
			if len(sf.Edits) == 0 {
				continue
			}
			file := ""
			f := fix{}
			ok := true
			for _, e := range sf.Edits {
				pos := fset.Position(e.Pos)
				end := fset.Position(e.End)
				if pos.Filename == "" || pos.Filename != end.Filename || end.Offset < pos.Offset {
					ok = false
					break
				}
				if file == "" {
					file = pos.Filename
				} else if file != pos.Filename {
					ok = false // multi-file fixes are not supported
					break
				}
				f.edits = append(f.edits, edit{start: pos.Offset, end: end.Offset, text: e.NewText})
			}
			if ok && file != "" {
				byFile[file] = append(byFile[file], f)
			}
			break // at most one fix per diagnostic is applied
		}
	}

	paths := make([]string, 0, len(byFile))
	for path := range byFile {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	var out []FileFix
	for _, path := range paths {
		old, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: reading %s for fixes: %w", path, err)
		}
		fixes := byFile[path]
		// Apply fixes in ascending order of their first edit; skip any
		// fix that overlaps ground already rewritten or lies out of range.
		sort.SliceStable(fixes, func(i, j int) bool { return fixes[i].edits[0].start < fixes[j].edits[0].start })
		applied := 0
		var edits []edit
		last := -1
		for _, f := range fixes {
			conflict := false
			for _, e := range f.edits {
				if e.start <= last || e.end > len(old) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			es := append([]edit(nil), f.edits...)
			sort.Slice(es, func(i, j int) bool { return es[i].start < es[j].start })
			for i := 1; i < len(es); i++ {
				if es[i].start < es[i-1].end {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			edits = append(edits, es...)
			last = es[len(es)-1].end
			applied++
		}
		if applied == 0 {
			continue
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var b strings.Builder
		prev := 0
		for _, e := range edits {
			b.Write(old[prev:e.start])
			b.WriteString(e.text)
			prev = e.end
		}
		b.Write(old[prev:])
		out = append(out, FileFix{Path: path, Old: old, New: []byte(b.String()), Applied: applied})
	}
	return out, nil
}

// Diff renders a minimal unified diff between the fix's old and new
// content, labeled with its path — the preview format of nwlint -diff.
func (f FileFix) Diff() string {
	oldLines := splitLines(string(f.Old))
	newLines := splitLines(string(f.New))
	ops := diffOps(oldLines, newLines)
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s (fixed)\n", f.Path, f.Path)
	i := 0
	for i < len(ops) {
		if ops[i].kind == opEqual {
			i++
			continue
		}
		// One hunk: the run of non-equal ops starting here.
		start := i
		for i < len(ops) && ops[i].kind != opEqual {
			i++
		}
		fmt.Fprintf(&b, "@@ -%d +%d @@\n", ops[start].oldLine, ops[start].newLine)
		for _, op := range ops[start:i] {
			switch op.kind {
			case opDelete:
				b.WriteString("-" + op.text + "\n")
			case opInsert:
				b.WriteString("+" + op.text + "\n")
			}
		}
	}
	return b.String()
}

type opKind int

const (
	opEqual opKind = iota
	opDelete
	opInsert
)

type diffOp struct {
	kind             opKind
	text             string
	oldLine, newLine int // 1-based position of the op in each file
}

// diffOps computes a line-level edit script via the classic LCS dynamic
// program — the fixed files are small, so the quadratic table is cheap.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{kind: opEqual, text: a[i], oldLine: i + 1, newLine: j + 1})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{kind: opDelete, text: a[i], oldLine: i + 1, newLine: j + 1})
			i++
		default:
			ops = append(ops, diffOp{kind: opInsert, text: b[j], oldLine: i + 1, newLine: j + 1})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{kind: opDelete, text: a[i], oldLine: i + 1, newLine: j + 1})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{kind: opInsert, text: b[j], oldLine: i + 1, newLine: j + 1})
	}
	return ops
}

// splitLines splits content into lines without their terminators; a
// trailing newline does not create a phantom empty line.
func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
