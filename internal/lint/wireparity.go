package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// WireParity mechanizes the cluster wire-form identity invariant
// (DESIGN §12): every exported identity field of engine.Request must
// round-trip through the peer-protocol wire struct and its
// MarshalWire/UnmarshalWire conversions, and the excluded execution
// details (Workers) must never cross the wire — a Request field added
// without updating wire.go would silently fork the content address
// between nodes, which is exactly the corruption a decoder fleet cannot
// detect from inside. The checked struct pairs are declared in
// Config.WireParity, so the rule extends to future protocols by adding a
// table row.
var WireParity = &Analyzer{
	Name: "wireparity",
	Doc:  "identity fields round-trip through the wire form; excluded fields never do",
	Run:  runWireParity,
}

func runWireParity(p *Pass) {
	for _, spec := range p.Cfg.WireParity {
		if p.Cfg.rel(p.Path) != spec.Pkg {
			continue
		}
		checkWireSpec(p, spec)
	}
}

func checkWireSpec(p *Pass, spec WireSpec) {
	scope := p.Pkg.Scope()
	reqStruct, reqPos := structOf(p, scope, spec.Struct)
	wireStruct, wirePos := structOf(p, scope, spec.Wire)
	if reqStruct == nil {
		p.Reportf(posOrFile(p, reqPos), "wire parity: struct %s not found in %s; update the WireParity table if it moved", spec.Struct, spec.Pkg)
		return
	}
	if wireStruct == nil {
		p.Reportf(posOrFile(p, wirePos), "wire parity: wire struct %s not found in %s; update the WireParity table if it moved", spec.Wire, spec.Pkg)
		return
	}

	excluded := make(map[string]bool, len(spec.Exclude))
	for _, name := range spec.Exclude {
		excluded[name] = true
	}
	wireFields := fieldSet(wireStruct)

	// Identity fields: every exported, non-excluded Request field must
	// exist in the wire struct under the same name.
	identity := make(map[string]bool)
	for i := 0; i < reqStruct.NumFields(); i++ {
		f := reqStruct.Field(i)
		if !f.Exported() {
			continue
		}
		if excluded[f.Name()] {
			if wireFields[f.Name()] {
				p.Reportf(wirePos, "wire parity: excluded field %s.%s crosses the wire through %s; it is an execution detail and must stay off the identity", spec.Struct, f.Name(), spec.Wire)
			}
			continue
		}
		identity[f.Name()] = true
		if !wireFields[f.Name()] {
			p.Reportf(f.Pos(), "wire parity: identity field %s.%s is missing from %s; add it there and to %s/%s so peers agree on the content address", spec.Struct, f.Name(), spec.Wire, spec.Marshal, spec.Unmarshal)
		}
	}
	// The wire struct must not carry fields the identity does not have.
	for i := 0; i < wireStruct.NumFields(); i++ {
		f := wireStruct.Field(i)
		if !identity[f.Name()] && !excluded[f.Name()] {
			p.Reportf(f.Pos(), "wire parity: %s.%s has no identity counterpart in %s; remove it or add the Request field", spec.Wire, f.Name(), spec.Struct)
		}
	}

	// The conversions must mention every surviving field explicitly:
	// MarshalWire builds the wire literal, UnmarshalWire rebuilds the
	// identity literal.
	checkConversion(p, spec.Marshal, spec.Wire, intersect(wireFields, identity))
	checkConversion(p, spec.Unmarshal, spec.Struct, intersect(identity, wireFields))
}

// checkConversion finds the function named fnName and verifies that the
// composite literal of type litType inside it sets every field in want.
func checkConversion(p *Pass, fnName, litType string, want map[string]bool) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fnName || fd.Body == nil {
				continue
			}
			var lit *ast.CompositeLit
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if named, ok := types.Unalias(p.Info.TypeOf(cl)).(*types.Named); ok && named.Obj().Name() == litType {
					lit = cl
					return false
				}
				return true
			})
			if lit == nil {
				p.Reportf(fd.Pos(), "wire parity: %s does not build a %s literal; the conversion must set every identity field explicitly", fnName, litType)
				return
			}
			set := make(map[string]bool)
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						set[id.Name] = true
					}
				}
			}
			for _, name := range sortedKeys(want) {
				if !set[name] {
					p.Reportf(lit.Pos(), "wire parity: %s's %s literal does not set %s; the field would silently zero on the wire", fnName, litType, name)
				}
			}
			return
		}
	}
	p.Reportf(posOrFile(p, 0), "wire parity: conversion %s not found; update the WireParity table if it was renamed", fnName)
}

// structOf resolves a package-scope struct type by name; the returned
// pos anchors diagnostics about the type itself.
func structOf(p *Pass, scope *types.Scope, name string) (*types.Struct, token.Pos) {
	obj := scope.Lookup(name)
	if obj == nil {
		return nil, 0
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, obj.Pos()
	}
	return st, obj.Pos()
}

func fieldSet(st *types.Struct) map[string]bool {
	out := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		out[st.Field(i).Name()] = true
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// posOrFile falls back to the first file's package clause when a
// diagnostic has no better anchor.
func posOrFile(p *Pass, pos token.Pos) token.Pos {
	if pos != 0 {
		return pos
	}
	if len(p.Files) > 0 {
		return p.Files[0].Package
	}
	return 0
}
