package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScratchConfine mechanizes the scratch-arena ownership rule of the
// chunked hot path (DESIGN §11): a buffer allocated inside a
// par.ForEachChunks / ForEachChunked / Map* block closure is chunk-local
// scratch, owned by exactly one callback invocation — it may be reused
// across the items of its block precisely because it never leaves the
// block. The rule flags every way such a buffer can escape the chunk:
// a store into a global or any variable captured from outside the
// closure (including fields and elements reached through one), a channel
// send, a return (in the ForEach* block forms, whose closures yield only
// an error — the Map* per-item return is the sanctioned hand-off of a
// freshly allocated result), and capture by a goroutine launched inside
// the block.
//
// Views of shared arenas are deliberately exempt: a variable initialized
// by slicing a captured arena (caveOut := wiresAll[lo:hi]) is a window
// into memory the caller owns positionally, not chunk-local scratch —
// writing through it is the whole point of the arena pattern. Only
// freshly allocated buffers (make, new, composite literals, append to
// nil) are treated as scratch. Reading an element of a scratch buffer
// (rows[i]) also passes: the element value is copied out, the buffer
// itself stays confined.
var ScratchConfine = &Analyzer{
	Name: "scratchconfine",
	Doc:  "scratch buffers allocated in par chunk closures must not escape the chunk",
	Run:  runScratchConfine,
}

// chunkedEntryPoints are the internal/par APIs whose final func-literal
// argument is a block (or per-item) callback with scratch-ownership
// semantics.
var chunkedEntryPoints = map[string]bool{
	"ForEachChunks":  true,
	"ForEachChunked": true,
	"ForEachN":       true,
	"ForEach":        true,
	"Map":            true,
	"MapChunked":     true,
	"MapN":           true,
	"MapNChunked":    true,
}

func runScratchConfine(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || !chunkedEntryPoints[fn.Name()] {
				return true
			}
			if p.Cfg.rel(fn.Pkg().Path()) != "internal/par" {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkChunkClosure(p, lit, strings.HasPrefix(fn.Name(), "ForEach"))
			return true
		})
	}
}

// checkChunkClosure flags chunk-local scratch escaping the block
// closure lit. Returns are an escape only in the ForEach* block forms
// (blockForm), where the closure yields nothing but an error and an
// aliasing return smuggles the buffer out through the error path; in
// the Map* forms the per-item return is the sanctioned hand-off of a
// buffer the invocation just allocated.
func checkChunkClosure(p *Pass, lit *ast.FuncLit, blockForm bool) {
	scratch := scratchVars(p, lit)
	if len(scratch) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				obj := aliasedScratch(p, rhs, scratch)
				if obj == nil {
					continue
				}
				root := rootObject(p, lhs)
				if root == nil || within(lit, root.Pos()) {
					continue
				}
				p.Reportf(n.Pos(), "chunk-local scratch %s escapes the par block through a store to %s, which outlives the chunk; copy the data or allocate per item", obj.Name(), root.Name())
			}
		case *ast.SendStmt:
			if obj := aliasedScratch(p, n.Value, scratch); obj != nil {
				p.Reportf(n.Pos(), "chunk-local scratch %s escapes the par block through a channel send; copy the data first", obj.Name())
			}
		case *ast.ReturnStmt:
			if !blockForm {
				break
			}
			for _, res := range n.Results {
				if obj := aliasedScratch(p, res, scratch); obj != nil {
					p.Reportf(n.Pos(), "chunk-local scratch %s escapes the par block through a return; allocate the result per item instead of reusing block scratch", obj.Name())
				}
			}
		case *ast.GoStmt:
			// Launching a goroutine here is already a nogoroutine
			// violation; the scratch angle is that the spawned closure may
			// outlive the block that owns the buffers it captures.
			for obj := range scratch {
				if capturesObject(p, n.Call, obj) {
					p.Reportf(n.Pos(), "chunk-local scratch %s is captured by a goroutine spawned inside the par block and may outlive the chunk", obj.Name())
				}
			}
		}
		return true
	})
}

// scratchVars collects the chunk-local scratch of a block closure: every
// variable declared directly in the closure body (any nesting depth)
// whose initializer allocates fresh memory — make, new, a composite
// literal, append to nil — and whose type can alias that memory (slice,
// map, pointer, channel). Views of outer arenas (slicing expressions,
// call results) are excluded by construction.
func scratchVars(p *Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id] // `=` re-assignment of a closure-local
					if obj == nil || !within(lit, obj.Pos()) {
						continue
					}
				}
				if allocatesFresh(p, n.Rhs[i]) && aliasable(obj.Type()) {
					out[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i >= len(n.Values) {
					break
				}
				obj := p.Info.Defs[id]
				if obj != nil && allocatesFresh(p, n.Values[i]) && aliasable(obj.Type()) {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// allocatesFresh reports whether expr builds new memory: make, new, a
// composite literal (possibly address-taken), or append with an untyped
// nil base.
func allocatesFresh(p *Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			return true
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := p.Info.Uses[id].(*types.Builtin)
		if !ok {
			return false
		}
		switch b.Name() {
		case "make", "new":
			return true
		case "append":
			if len(e.Args) > 0 {
				if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
					return true
				}
			}
		}
	}
	return false
}

// aliasable reports whether a value of type t shares memory when copied
// (slice, map, pointer, channel) — the types for which handing the value
// out also hands out the scratch buffer.
func aliasable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// aliasedScratch returns the scratch object whose memory expr aliases:
// the bare identifier, its address, a reslicing of it, an append over
// it, or a composite literal carrying any of those — and nil when expr
// only copies element values out (indexing) or mentions no scratch at
// all. Results of ordinary calls are assumed alias-free: a synchronous
// callee cannot retain its arguments beyond the block without a store
// the analysis of that callee's own package would flag.
func aliasedScratch(p *Pass, expr ast.Expr, scratch map[types.Object]bool) types.Object {
	var found types.Object
	var scan func(ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.IndexExpr:
				// Element reads copy values out of the buffer; the buffer
				// itself stays put. Skip the base, keep scanning the index.
				scan(n.Index)
				return false
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						return true // append's result aliases its base
					}
				}
				for _, arg := range n.Args {
					if _, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						scan(arg) // a literal callback may smuggle the buffer out
					}
				}
				return false
			case *ast.Ident:
				if obj := p.Info.Uses[n]; obj != nil && scratch[obj] {
					found = obj
				}
			}
			return true
		})
	}
	scan(expr)
	return found
}

// rootObject resolves the storage root of an lvalue: the identifier at
// the base of any chain of selectors, indexes, stars and slices. The
// root decides ownership — if it was declared outside the closure, the
// store publishes beyond the chunk.
func rootObject(p *Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return p.Info.ObjectOf(e)
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// capturesObject reports whether the call (of a go statement) references
// obj anywhere — as an argument or captured by a function-literal callee.
func capturesObject(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	captured := false
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			captured = true
		}
		return !captured
	})
	return captured
}
