package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// directive is one parsed, well-formed ignore comment.
type directive struct {
	file    string
	line    int
	rule    string
	pos     ast.Node // the comment, for stale reporting and deletion
	matched bool
}

const ignorePrefix = "//nwlint:ignore"

// suppress drops diagnostics covered by a well-formed ignore directive
// on the same line or the line above, reports malformed directives under
// the pseudo-rule "ignore", and reports well-formed directives that
// suppressed nothing as stale — but only when the directive's rule was
// among the rules that ran (ran), so a -rules subset run never
// misclassifies a live suppression. Both malformed and stale reports
// carry a fix that deletes the directive.
func suppress(pkg *Package, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	var dirs []*directive
	var extra []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					extra = append(extra, Diagnostic{
						Position: pos,
						Rule:     "ignore",
						Message:  fmt.Sprintf("malformed directive %q: want //nwlint:ignore <rule> <reason>", c.Text),
						Fixes:    []SuggestedFix{deleteComment(c)},
					})
					continue
				}
				dirs = append(dirs, &directive{file: pos.Filename, line: pos.Line, rule: fields[0], pos: c})
			}
		}
	}
	if len(dirs) > 0 {
		kept := diags[:0]
		for _, d := range diags {
			suppressed := false
			for _, dir := range dirs {
				if d.Rule == dir.rule && d.Position.Filename == dir.file &&
					(d.Position.Line == dir.line || d.Position.Line == dir.line+1) {
					dir.matched = true
					suppressed = true
					break
				}
			}
			if !suppressed {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	for _, dir := range dirs {
		if dir.matched || !ran[dir.rule] {
			continue
		}
		extra = append(extra, Diagnostic{
			Position: pkg.Fset.Position(dir.pos.Pos()),
			Rule:     "ignore",
			Message:  fmt.Sprintf("stale directive: no %s diagnostic is suppressed here anymore; delete it", dir.rule),
			Fixes:    []SuggestedFix{deleteComment(dir.pos)},
		})
	}
	return append(diags, extra...)
}

// deleteComment is the fix shared by malformed and stale directives:
// remove the comment text (gofmt reclaims any leftover blank line).
func deleteComment(c ast.Node) SuggestedFix {
	return SuggestedFix{
		Message: "delete the directive",
		Edits:   []TextEdit{{Pos: c.Pos(), End: c.End(), NewText: ""}},
	}
}
