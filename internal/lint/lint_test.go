package lint_test

import (
	"encoding/json"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"nwdec/internal/lint"
)

// newTestLoader returns a loader rooted at the repository module.
func newTestLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

// wantRe extracts the quoted regexps of a `// want` annotation.
var wantRe = regexp.MustCompile("`([^`]+)`")

// expectation is one expected diagnostic: a position plus a pattern the
// "rule: message" rendering must match.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
}

// wants parses the `// want` annotations of a fixture package.
func wants(t *testing.T, pkg *lint.Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "// want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want annotation without backquoted pattern: %s", pos.Filename, pos.Line, text)
				}
				for _, m := range matches {
					out = append(out, expectation{file: pos.Filename, line: pos.Line, pattern: regexp.MustCompile(m[1])})
				}
			}
		}
	}
	return out
}

// matchDiagnostics verifies the diagnostics against the expectations:
// every expectation is satisfied on its exact line and every diagnostic
// is expected.
func matchDiagnostics(t *testing.T, diags []lint.Diagnostic, expects []expectation) {
	t.Helper()
	used := make([]bool, len(diags))
	for _, e := range expects {
		found := false
		for i, d := range diags {
			if used[i] || d.Position.Filename != e.file || d.Position.Line != e.line {
				continue
			}
			if e.pattern.MatchString(d.Rule + ": " + d.Message) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(e.file), e.line, e.pattern)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzers drives every analyzer over its fixture package and
// checks the produced diagnostics against the `// want` annotations.
func TestAnalyzers(t *testing.T) {
	loader := newTestLoader(t)
	cfg := lint.DefaultConfig(loader.Module)
	cases := []struct {
		fixture string // directory under testdata/src
		path    string // import path the fixture is analyzed under
		rules   string // rule subset to run
	}{
		{"determinism", "nwdec/internal/code", "determinism"},
		{"ctxfirst", "nwdec/internal/experiments", "ctxfirst"},
		{"nogoroutine", "nwdec/internal/crossbar", "nogoroutine"},
		{"nogoroutine_par", "nwdec/internal/par", "nogoroutine"},
		{"errcheck", "nwdec/internal/readout", "errcheck"},
		{"printbound", "nwdec/internal/geometry", "printbound"},
		{"printbound_main", "nwdec/cmd/fixture", "printbound"},
		{"wireparity", "nwdec/internal/engine", "wireparity"},
		{"ctxfirst_alias", "nwdec/internal/sweep", "ctxfirst"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", tc.fixture), tc.path)
			if err != nil {
				t.Fatal(err)
			}
			analyzers, err := lint.ByName(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			diags := lint.Run([]*lint.Package{pkg}, analyzers, cfg)
			matchDiagnostics(t, diags, wants(t, pkg))
		})
	}
}

// TestSuppression pins the //nwlint:ignore mechanics: a well-formed
// directive (above or inline) silences its diagnostic, a reason-less
// directive is reported as malformed and suppresses nothing.
func TestSuppression(t *testing.T) {
	loader := newTestLoader(t)
	cfg := lint.DefaultConfig(loader.Module)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "suppress"), "nwdec/internal/mspt")
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := lint.ByName("determinism")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers, cfg)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed directive + surviving violation):\n%v", len(diags), diags)
	}
	var sawMalformed, sawSurvivor bool
	for _, d := range diags {
		switch d.Rule {
		case "ignore":
			if !strings.Contains(d.Message, "malformed directive") {
				t.Errorf("ignore diagnostic has message %q", d.Message)
			}
			sawMalformed = true
		case "determinism":
			sawSurvivor = true
			// The surviving violation must be the one under the malformed
			// directive, i.e. after both well-formed suppressions.
			if d.Position.Line < 20 {
				t.Errorf("suppressed diagnostic leaked through at line %d", d.Position.Line)
			}
		default:
			t.Errorf("unexpected rule %q", d.Rule)
		}
	}
	if !sawMalformed || !sawSurvivor {
		t.Errorf("malformed=%v survivor=%v, want both", sawMalformed, sawSurvivor)
	}
}

// TestStaleDirectives pins the stale-suppression detection: a directive
// that still suppresses a diagnostic survives untouched; one that
// matches nothing is reported with a deletion fix — so exiting 1 on a
// stale directive comes for free from the normal diagnostic path.
func TestStaleDirectives(t *testing.T) {
	loader := newTestLoader(t)
	cfg := lint.DefaultConfig(loader.Module)
	// internal/code is a deterministic package, so the fixture's live
	// directive really suppresses a time.Now diagnostic.
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "stale"), "nwdec/internal/code")
	if err != nil {
		t.Fatal(err)
	}
	analyzers, err := lint.ByName("determinism")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers, cfg)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale directive:\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "ignore" || !strings.Contains(d.Message, "stale directive: no determinism diagnostic") {
		t.Errorf("diagnostic = %s", d)
	}
	if len(d.Fixes) != 1 || len(d.Fixes[0].Edits) != 1 {
		t.Errorf("stale directive carries no deletion fix: %+v", d.Fixes)
	}
}

// TestDatasetJSON pins the -json interchange shape: the diagnostics
// dataset round-trips through the standard dataset JSON renderer with
// the five-column schema.
func TestDatasetJSON(t *testing.T) {
	diags := []lint.Diagnostic{
		{Rule: "determinism", Message: "m1"},
		{Rule: "errcheck", Message: "m2"},
	}
	diags[0].Position.Filename = "a.go"
	diags[0].Position.Line = 3
	diags[0].Position.Column = 7
	ds := lint.Dataset(diags)
	raw, err := ds.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name    string `json:"name"`
		Columns []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"columns"`
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "nwlint" {
		t.Errorf("dataset name = %q, want nwlint", got.Name)
	}
	wantCols := []string{"file", "line", "col", "rule", "message"}
	if len(got.Columns) != len(wantCols) {
		t.Fatalf("got %d columns, want %d", len(got.Columns), len(wantCols))
	}
	for i, c := range got.Columns {
		if c.Name != wantCols[i] {
			t.Errorf("column %d = %q, want %q", i, c.Name, wantCols[i])
		}
	}
	if len(got.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(got.Rows))
	}
	if got.Rows[0][0] != "a.go" || got.Rows[0][3] != "determinism" {
		t.Errorf("row 0 = %v", got.Rows[0])
	}
}

// TestByName pins rule-subset resolution and its error message.
func TestByName(t *testing.T) {
	as, err := lint.ByName("determinism, errcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "determinism" || as[1].Name != "errcheck" {
		t.Errorf("ByName = %v", as)
	}
	if _, err := lint.ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown rule") {
		t.Errorf("err = %v, want unknown rule", err)
	}
}

// TestModulePackages checks the ./... expansion: module packages are
// found, testdata fixture packages are not.
func TestModulePackages(t *testing.T) {
	loader := newTestLoader(t)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"nwdec/internal/lint":     false,
		"nwdec/internal/par":      false,
		"nwdec/cmd/nwlint":        false,
		"nwdec/scripts":           false,
		"nwdec/scripts/covergate": false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into module listing: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("module listing is missing %s", p)
		}
	}
}

// TestCleanTree is the self-hosting gate: the repository's own packages
// must be free of diagnostics, the same invariant scripts/ci.sh
// enforces with the cmd/nwlint step.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader := newTestLoader(t)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	pkgs := make([]*lint.Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range lint.Run(pkgs, lint.All(), lint.DefaultConfig(loader.Module)) {
		t.Errorf("%s", d)
	}
}
