// Package lint is the project's static-analysis engine: a modular,
// type-aware analyzer framework in the shape of go/analysis (stdlib
// only, built on go/ast + go/types) plus the nine project-invariant
// analyzers that turn the repository's correctness conventions into
// machine-checked rules.
//
// The framework runs each Analyzer over a fully type-checked package.
// An analyzer may export facts — typed data attached to objects or
// packages — that passes over downstream packages import, so rules can
// reason across package boundaries (see Fact). Packages are analyzed in
// dependency order, independent packages in parallel on the internal/par
// pool, and the diagnostic stream is byte-identical at every worker
// count. Diagnostics may carry SuggestedFixes that the cmd/nwlint driver
// applies with -fix (or previews with -diff).
//
// The invariants the analyzers protect are the ones the paper
// reproduction depends on:
//
//   - determinism — every pipeline stage must be bit-identical at any
//     worker count, so wall-clock reads, the global math/rand source and
//     map-iteration order must never feed output (rule "determinism");
//   - cancellation — context.Context flows first-argument-first through
//     every long-running entry point (rule "ctxfirst");
//   - concurrency containment — goroutines and WaitGroups live only in
//     internal/par, the deterministic execution engine (rule
//     "nogoroutine");
//   - error discipline — no silently discarded error results and no
//     unwrapped fmt.Errorf causes (rule "errcheck");
//   - output discipline — stdout is owned by the cmd layer and the
//     renderers; library packages return data (rule "printbound");
//   - scratch confinement — chunk-local scratch buffers allocated inside
//     a par block closure never escape the chunk (rule "scratchconfine");
//   - atomic coherence — a struct field accessed through sync/atomic
//     anywhere is accessed atomically everywhere (rule "atomicfield");
//   - layering — the package DAG is pinned: the engine never imports the
//     cluster, obs stays below the pipeline, and the text renderers are
//     reachable only from the edges (rule "layering");
//   - wire parity — every identity field of engine.Request round-trips
//     through the peer-protocol wire form, and Workers never does (rule
//     "wireparity").
//
// A diagnostic can be suppressed at a specific site with a directive
// comment on the same line or the line above:
//
//	//nwlint:ignore <rule> <reason>
//
// The reason is mandatory: an unexplained suppression is itself
// reported. A directive that no longer suppresses anything is reported
// as stale (with a fix that deletes it), so suppressions rot away
// instead of accumulating. The cmd/nwlint driver applies the analyzers
// to module packages; the self-tests apply them to fixture packages
// under testdata/src with expected-diagnostic annotations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named rule: a documented invariant plus the pass that
// enforces it over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and ignore
	// directives ("determinism", "ctxfirst", ...).
	Name string
	// Doc is the one-line statement of the invariant the rule protects.
	Doc string
	// Run inspects one package and reports violations through the pass.
	// Runs over distinct packages may execute concurrently; a run must
	// touch nothing outside its pass.
	Run func(*Pass)
}

// All returns the nine project analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, CtxFirst, NoGoroutine, ErrCheck, PrintBound,
		ScratchConfine, AtomicField, Layering, WireParity,
	}
}

// ByName resolves a comma-separated rule list ("determinism,errcheck").
// An unknown name is an error listing the known rules.
func ByName(list string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, 0, len(All()))
			for _, a := range All() {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// TextEdit is one span replacement of a suggested fix. Pos and End are
// positions in the pass's file set; NewText replaces the source bytes of
// [Pos, End).
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is a self-contained repair for a diagnostic: a set of
// non-overlapping edits the cmd/nwlint -fix mode applies mechanically.
// A fix must preserve behavior except for curing the violation.
type SuggestedFix struct {
	// Message describes the repair ("wrap the error cause with %w").
	Message string
	// Edits are the span replacements, in any order.
	Edits []TextEdit
}

// Diagnostic is one reported violation, positioned to the character.
type Diagnostic struct {
	// Position locates the violation (filename, line, column).
	Position token.Position
	// Rule is the analyzer name that produced the diagnostic.
	Rule string
	// Message states the violation and the repair direction.
	Message string
	// Fixes are optional mechanical repairs (applied by nwlint -fix).
	Fixes []SuggestedFix
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Rule, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Fset resolves token positions for every file of the package.
	Fset *token.FileSet
	// Path is the package import path the rules match against (fixture
	// packages are loaded under a caller-chosen path).
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker fact tables for the package files.
	Info *types.Info
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Cfg is the project configuration (which packages are
	// deterministic, where goroutines may live, ...).
	Cfg *Config

	rule  string
	diags *[]Diagnostic
	store *factStore
	facts *pkgFacts
}

// Reportf records a diagnostic at pos under the running rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Rule:     p.rule,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report records a fully-formed diagnostic (message plus suggested
// fixes) at pos under the running rule.
func (p *Pass) Report(pos token.Pos, message string, fixes ...SuggestedFix) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Rule:     p.rule,
		Message:  message,
		Fixes:    fixes,
	})
}

// ExportObjectFact attaches a fact to obj for downstream passes. Facts
// may only be exported for objects of the pass's own package — the
// package that declares an object is the authority on it; exports for
// foreign objects are dropped.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	p.facts.exportObject(obj, f)
}

// ImportObjectFact copies the fact of f's concrete type previously
// exported for obj (by this pass or an upstream package's pass) into f
// and reports whether one was found. f must be a non-nil pointer.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.store == nil || obj == nil {
		return false
	}
	return p.store.importObject(obj, f)
}

// ExportPackageFact attaches a fact to the pass's package as a whole.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.facts == nil {
		return
	}
	p.facts.exportPackage(f)
}

// ImportPackageFact copies the fact of f's concrete type previously
// exported for pkg into f and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if p.store == nil || pkg == nil {
		return false
	}
	return p.store.importPackage(pkg, f)
}
