// Package lint is the project's static-analysis engine: a small,
// stdlib-only analyzer framework (go/ast + go/types) plus the five
// project-invariant analyzers that turn the repository's correctness
// conventions into machine-checked rules.
//
// The invariants the analyzers protect are the ones the paper
// reproduction depends on:
//
//   - determinism — every pipeline stage must be bit-identical at any
//     worker count, so wall-clock reads, the global math/rand source and
//     map-iteration order must never feed output (rule "determinism");
//   - cancellation — context.Context flows first-argument-first through
//     every long-running entry point (rule "ctxfirst");
//   - concurrency containment — goroutines and WaitGroups live only in
//     internal/par, the deterministic execution engine (rule
//     "nogoroutine");
//   - error discipline — no silently discarded error results and no
//     unwrapped fmt.Errorf causes (rule "errcheck");
//   - output discipline — stdout is owned by the cmd layer and the
//     renderers; library packages return data (rule "printbound").
//
// A diagnostic can be suppressed at a specific site with a directive
// comment on the same line or the line above:
//
//	//nwlint:ignore <rule> <reason>
//
// The reason is mandatory: an unexplained suppression is itself
// reported. The cmd/nwlint driver applies the analyzers to module
// packages; the self-tests apply them to fixture packages under
// testdata/src with expected-diagnostic annotations.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule: a documented invariant plus the pass that
// enforces it over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and ignore
	// directives ("determinism", "ctxfirst", ...).
	Name string
	// Doc is the one-line statement of the invariant the rule protects.
	Doc string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass)
}

// All returns the five project analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, CtxFirst, NoGoroutine, ErrCheck, PrintBound}
}

// ByName resolves a comma-separated rule list ("determinism,errcheck").
// An unknown name is an error listing the known rules.
func ByName(list string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, 0, len(All()))
			for _, a := range All() {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("lint: unknown rule %q (known: %s)", name, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Diagnostic is one reported violation, positioned to the character.
type Diagnostic struct {
	// Position locates the violation (filename, line, column).
	Position token.Position
	// Rule is the analyzer name that produced the diagnostic.
	Rule string
	// Message states the violation and the repair direction.
	Message string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Rule, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Fset resolves token positions for every file of the package.
	Fset *token.FileSet
	// Path is the package import path the rules match against (fixture
	// packages are loaded under a caller-chosen path).
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker fact tables for the package files.
	Info *types.Info
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Cfg is the project configuration (which packages are
	// deterministic, where goroutines may live, ...).
	Cfg *Config

	rule  string
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the running rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Position: p.Fset.Position(pos),
		Rule:     p.rule,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to every package and returns the surviving
// diagnostics sorted by position. Suppression directives
// (//nwlint:ignore rule reason) are honored here; malformed directives
// are reported under the pseudo-rule "ignore".
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{
			Fset:  pkg.Fset,
			Path:  pkg.Path,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			Files: pkg.Files,
			Cfg:   cfg,
			diags: &diags,
		}
		for _, a := range analyzers {
			pass.rule = a.Name
			a.Run(pass)
		}
		diags = suppress(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// directive is one parsed //nwlint:ignore comment.
type directive struct {
	file string
	line int
	rule string
}

const ignorePrefix = "//nwlint:ignore"

// suppress drops diagnostics covered by a well-formed ignore directive on
// the same line or the line above, and reports malformed directives under
// the pseudo-rule "ignore".
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	var dirs []directive
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Position: pos,
						Rule:     "ignore",
						Message:  fmt.Sprintf("malformed directive %q: want //nwlint:ignore <rule> <reason>", c.Text),
					})
					continue
				}
				dirs = append(dirs, directive{file: pos.Filename, line: pos.Line, rule: fields[0]})
			}
		}
	}
	if len(dirs) > 0 {
		kept := diags[:0]
		for _, d := range diags {
			suppressed := false
			for _, dir := range dirs {
				if d.Rule == dir.rule && d.Position.Filename == dir.file &&
					(d.Position.Line == dir.line || d.Position.Line == dir.line+1) {
					suppressed = true
					break
				}
			}
			if !suppressed {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	return append(diags, malformed...)
}
