package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFirst enforces the cancellation-plumbing convention: a
// context.Context parameter always comes first, and the exported
// long-running entry points of the pipeline packages (the parallel
// *Workers functions and the Run/RunAll drivers) must accept one so
// every expensive loop is cancellable.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context is the first parameter; long-running entry points must accept one",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	entry := p.Cfg.CtxEntry(p.Path)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var name string
			var exported bool
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, name, exported = n.Type, n.Name.Name, n.Name.IsExported()
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			checkCtxPosition(p, ft)
			if entry && exported && longRunningEntry(p, ft, name) && !hasCtxParam(p, ft) {
				p.Reportf(ft.Pos(), "long-running entry point %s must accept a context.Context (first parameter) so callers can cancel it", name)
			}
			return true
		})
	}
}

// checkCtxPosition reports any context.Context parameter that is not the
// first parameter of its function.
func checkCtxPosition(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // parameter index, counting named groups
	for fi, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(p.Info.TypeOf(field.Type)) && (fi > 0 || pos > 0) {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// hasCtxParam reports whether any parameter is a context.Context.
func hasCtxParam(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// longRunningEntry applies the project's naming convention for
// cancellable entry points: an explicit worker-pool surface (a *Workers
// suffix or a `workers` parameter) or a registry driver (Run/RunAll).
func longRunningEntry(p *Pass, ft *ast.FuncType, name string) bool {
	if strings.HasSuffix(name, "Workers") || name == "Run" || name == "RunAll" {
		return true
	}
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		for _, id := range field.Names {
			if id.Name == "workers" {
				return true
			}
		}
	}
	return false
}

// isCtxType reports whether t is context.Context, detected through the
// type checker rather than the spelling at the call site: a renamed
// import (ctx "context"), a type alias (type Ctx = context.Context) or a
// vendored copy all resolve to the same named type, so none of them can
// dodge the rule. Vendored copies keep the "context" path tail with
// their vendor prefix stripped by the type checker; the defining-package
// check below therefore keys on the resolved package path, never on
// source text.
func isCtxType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
