package lint

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed datum an analyzer exports about an object or a
// package for downstream passes to consume — the cross-package half of
// the framework. A fact type is identified by its concrete Go type (so
// two analyzers cannot collide unless they share a type), must be a
// pointer to a struct, and should carry only what downstream rules
// need. The canonical example is atomicfield's marker on struct fields
// that are accessed through sync/atomic: the defining package's pass
// exports it, and every importing package's pass flags plain access.
//
// Facts flow strictly along the import DAG: a pass sees the facts of
// the packages it (transitively) imports, because the runner analyzes
// packages in dependency order. Facts about a package that nothing
// imports are visible only to that package's own pass.
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// pkgFacts is the fact set one package's pass exports. Each analyzed
// package owns exactly one, created before scheduling, so parallel
// passes write only their own set and read only completed ones — no
// locking needed under the runner's wave barriers.
type pkgFacts struct {
	obj map[types.Object][]Fact
	pkg []Fact
}

func newPkgFacts() *pkgFacts {
	return &pkgFacts{obj: make(map[types.Object][]Fact)}
}

func (s *pkgFacts) exportObject(obj types.Object, f Fact) {
	// One fact per concrete type per object: a re-export overwrites.
	for i, have := range s.obj[obj] {
		if reflect.TypeOf(have) == reflect.TypeOf(f) {
			s.obj[obj][i] = f
			return
		}
	}
	s.obj[obj] = append(s.obj[obj], f)
}

func (s *pkgFacts) exportPackage(f Fact) {
	for i, have := range s.pkg {
		if reflect.TypeOf(have) == reflect.TypeOf(f) {
			s.pkg[i] = f
			return
		}
	}
	s.pkg = append(s.pkg, f)
}

// factStore maps every analyzed package to its fact set. The runner
// pre-creates one entry per package; lookups key on the *types.Package
// identity, which the shared loader guarantees is unique per import
// path.
type factStore struct {
	byPkg map[*types.Package]*pkgFacts
}

func newFactStore(pkgs []*Package) *factStore {
	s := &factStore{byPkg: make(map[*types.Package]*pkgFacts, len(pkgs))}
	for _, pkg := range pkgs {
		s.byPkg[pkg.Types] = newPkgFacts()
	}
	return s
}

// fill copies src into dst through reflection; both must be pointers of
// the same concrete type.
func fill(dst, src Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return
	}
	dv.Elem().Set(sv.Elem())
}

func (s *factStore) importObject(obj types.Object, f Fact) bool {
	set, ok := s.byPkg[obj.Pkg()]
	if !ok {
		return false
	}
	for _, have := range set.obj[obj] {
		if reflect.TypeOf(have) == reflect.TypeOf(f) {
			fill(f, have)
			return true
		}
	}
	return false
}

func (s *factStore) importPackage(pkg *types.Package, f Fact) bool {
	set, ok := s.byPkg[pkg]
	if !ok {
		return false
	}
	for _, have := range set.pkg {
		if reflect.TypeOf(have) == reflect.TypeOf(f) {
			fill(f, have)
			return true
		}
	}
	return false
}

// FactLine is one exported fact in the human-readable dump of the
// cmd/nwlint -facts mode.
type FactLine struct {
	// Package is the import path of the exporting package.
	Package string `json:"package"`
	// Object names the annotated object ("(Type).Field"), empty for a
	// package-level fact.
	Object string `json:"object,omitempty"`
	// Fact is the concrete fact type name.
	Fact string `json:"fact"`
}

// summary flattens the store into deterministic dump lines, sorted by
// package, object, fact type.
func (s *factStore) summary() []FactLine {
	var out []FactLine
	for tpkg, set := range s.byPkg {
		for obj, facts := range set.obj {
			name := obj.Name()
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				name = fieldOwner(tpkg, v) + "." + name
			}
			for _, f := range facts {
				out = append(out, FactLine{Package: tpkg.Path(), Object: name, Fact: factName(f)})
			}
		}
		for _, f := range set.pkg {
			out = append(out, FactLine{Package: tpkg.Path(), Fact: factName(f)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Fact < b.Fact
	})
	return out
}

// fieldOwner finds the named type of pkg that declares field v, for
// fact-dump labels; an unmatched field renders as "?".
func fieldOwner(pkg *types.Package, v *types.Var) string {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return name
			}
		}
	}
	return "?"
}

func factName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return fmt.Sprintf("%s", t.Name())
}
