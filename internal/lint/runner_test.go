package lint_test

import (
	"context"
	"path/filepath"
	"testing"

	"nwdec/internal/lint"
)

// loadFixture loads one testdata fixture under the given import path
// with a fresh loader (fixtures that import real module packages must
// not share a loader with fixtures loaded under those packages' paths).
func loadFixture(t *testing.T, loader *lint.Loader, fixture, asPath string) *lint.Package {
	t.Helper()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", fixture), asPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestScratchConfine drives the scratch-confinement rule over a fixture
// calling the real internal/par entry points: every escape shape is
// flagged, the arena-view / element-read / per-item-result patterns are
// not.
func TestScratchConfine(t *testing.T) {
	loader := newTestLoader(t)
	pkg := loadFixture(t, loader, "scratchconfine", "nwdec/internal/yield")
	analyzers, err := lint.ByName("scratchconfine")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers, lint.DefaultConfig(loader.Module))
	matchDiagnostics(t, diags, wants(t, pkg))
}

// TestLayering drives the layering rule over a fixture analyzed under
// the internal/obs path that imports both a denied package and a
// restricted renderer.
func TestLayering(t *testing.T) {
	loader := newTestLoader(t)
	pkg := loadFixture(t, loader, "layering", "nwdec/internal/obs")
	analyzers, err := lint.ByName("layering")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers, lint.DefaultConfig(loader.Module))
	matchDiagnostics(t, diags, wants(t, pkg))
}

// TestAtomicFactFlow pins the cross-package fact pipeline: the pass over
// the defining fixture exports an AtomicFieldFact for the atomically
// accessed field, and the pass over the importing fixture flags its
// plain access purely through the imported fact. The packages are passed
// to the runner in reverse dependency order to prove the wave scheduler
// reorders them.
func TestAtomicFactFlow(t *testing.T) {
	loader := newTestLoader(t)
	def := loadFixture(t, loader, "atomicdef", "nwdec/internal/atomicdef")
	use := loadFixture(t, loader, "atomicuse", "nwdec/internal/atomicuse")
	analyzers, err := lint.ByName("atomicfield")
	if err != nil {
		t.Fatal(err)
	}
	diags, facts, err := lint.RunParallelFacts(context.Background(), 2,
		[]*lint.Package{use, def}, analyzers, lint.DefaultConfig(loader.Module))
	if err != nil {
		t.Fatal(err)
	}
	matchDiagnostics(t, diags, append(wants(t, def), wants(t, use)...))

	want := lint.FactLine{Package: "nwdec/internal/atomicdef", Object: "Counters.Hits", Fact: "AtomicFieldFact"}
	found := false
	for _, f := range facts {
		if f == want {
			found = true
		}
	}
	if !found {
		t.Errorf("fact summary %v does not contain %v", facts, want)
	}
}

// TestWorkersByteIdentical pins the runner's determinism contract: the
// rendered diagnostic stream over a mixed set of real and fixture
// packages (multiple dependency waves, non-empty diagnostics) is
// byte-identical at every worker count.
func TestWorkersByteIdentical(t *testing.T) {
	loader := newTestLoader(t)
	var pkgs []*lint.Package
	for _, path := range []string{"nwdec/internal/obs", "nwdec/internal/par", "nwdec/internal/cli"} {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	pkgs = append(pkgs,
		loadFixture(t, loader, "errcheck", "nwdec/internal/errfixa"),
		loadFixture(t, loader, "errcheck", "nwdec/internal/errfixb"),
	)
	cfg := lint.DefaultConfig(loader.Module)

	render := func(workers int) []string {
		diags, err := lint.RunParallel(context.Background(), workers, pkgs, lint.All(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(diags))
		for i, d := range diags {
			out[i] = d.String()
		}
		return out
	}
	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("fixture set produced no diagnostics; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 8} {
		parallel := render(workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d diagnostics, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Errorf("workers=%d: diagnostic %d = %q, want %q", workers, i, parallel[i], serial[i])
			}
		}
	}
}

// TestConcurrentAnalysis runs all analyzers concurrently over
// independent copies of a fixture package — one wave, multiple workers —
// so `go test -race ./internal/lint` exercises the shared state of the
// runner (fact store, file set, config) under real parallelism.
func TestConcurrentAnalysis(t *testing.T) {
	loader := newTestLoader(t)
	// Independent copies of the same sources under distinct deterministic
	// paths: no import edges between them, so they share one wave.
	paths := []string{"nwdec/internal/code", "nwdec/internal/mspt", "nwdec/internal/physics"}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkgs = append(pkgs, loadFixture(t, loader, "determinism", p))
	}
	cfg := lint.DefaultConfig(loader.Module)
	diags, err := lint.RunParallel(context.Background(), len(pkgs), pkgs, lint.All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := lint.Run(pkgs[:1], lint.All(), cfg)
	if len(single) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	if len(diags) != len(paths)*len(single) {
		t.Errorf("got %d diagnostics from %d copies, want %d", len(diags), len(paths), len(paths)*len(single))
	}
}
