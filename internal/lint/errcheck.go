package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrCheck enforces error discipline: no error result silently
// discarded — neither by a bare call statement nor a blank assignment —
// and no fmt.Errorf that carries an error argument without wrapping it
// with %w (unwrapped causes break errors.Is chains like the
// ErrCountExceedsSpace checks).
//
// Calls whose failure is meaningless or impossible are exempt: fmt
// printing to the console (printbound owns where that is legal, and a
// failed console write has no recovery) and writes whose sink is a
// strings.Builder, bytes.Buffer or hash, which never return an error.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "no discarded error results; fmt.Errorf wraps its error cause with %w",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedCall(p, call, "")
				}
			case *ast.DeferStmt:
				checkDiscardedCall(p, n.Call, "deferred ")
			case *ast.AssignStmt:
				checkBlankAssign(p, n)
			case *ast.CallExpr:
				checkErrorfWrap(p, n)
			}
			return true
		})
	}
}

// checkDiscardedCall reports a statement-position call whose error
// result vanishes.
func checkDiscardedCall(p *Pass, call *ast.CallExpr, kind string) {
	if !returnsError(p, call) || infallible(p, call) {
		return
	}
	p.Reportf(call.Pos(), "error result of %scall to %s is discarded; handle it or return it", kind, calleeName(p, call))
}

// checkBlankAssign reports error results assigned to the blank
// identifier.
func checkBlankAssign(p *Pass, as *ast.AssignStmt) {
	// Tuple form: a, _ := call().
	if len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || infallible(p, call) {
			return
		}
		tuple, ok := p.Info.TypeOf(call).(*types.Tuple)
		if !ok {
			if len(as.Lhs) == 1 && isBlank(as.Lhs[0]) && isErrorType(p.Info.TypeOf(call)) {
				p.Reportf(as.Pos(), "error result of %s is assigned to _; handle it or return it", calleeName(p, call))
			}
			return
		}
		for i := 0; i < tuple.Len() && i < len(as.Lhs); i++ {
			if isBlank(as.Lhs[i]) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(as.Pos(), "error result of %s is assigned to _; handle it or return it", calleeName(p, call))
				return
			}
		}
		return
	}
	// Parallel form: a, b = f(), g().
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || infallible(p, call) {
			continue
		}
		if isErrorType(p.Info.TypeOf(call)) {
			p.Reportf(as.Pos(), "error result of %s is assigned to _; handle it or return it", calleeName(p, call))
		}
	}
}

// checkErrorfWrap reports fmt.Errorf calls that format an error cause
// without the %w wrapping verb. When the format string is a plain
// literal, the diagnostic carries a fix that rewrites the verb matching
// the error argument to %w.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for i, arg := range call.Args[1:] {
		if isErrorType(p.Info.TypeOf(arg)) {
			p.Report(call.Pos(),
				"fmt.Errorf formats an error cause without %w; wrap it so errors.Is/As keep working",
				wrapVerbFix(p, call, i)...)
			return
		}
	}
}

// wrapVerbFix builds the suggested fix for an unwrapped Errorf cause:
// replace the verb consumed by vararg index argIdx with %w. The fix is
// only offered when the format is a direct string literal in the call
// (so the edit lands inside real source) without explicit argument
// indexes, and the verb for that argument can be located unambiguously.
func wrapVerbFix(p *Pass, call *ast.CallExpr, argIdx int) []SuggestedFix {
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%[") {
		return nil
	}
	// Scan the raw literal text (quotes and escapes exactly as in
	// source) for verbs; escape sequences never produce a '%', so byte
	// offsets in lit.Value are source offsets from lit.Pos().
	verb := -1
	count := 0
	for i := 0; i < len(lit.Value); i++ {
		if lit.Value[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(lit.Value) && strings.ContainsRune("#0- +.123456789", rune(lit.Value[j])) {
			j++
		}
		if j >= len(lit.Value) {
			break
		}
		if lit.Value[j] == '%' {
			i = j // literal %%
			continue
		}
		if lit.Value[j] == '*' {
			return nil // a star width consumes an argument; mapping is off
		}
		if count == argIdx {
			verb = j
			break
		}
		count++
		i = j
	}
	if verb < 0 {
		return nil
	}
	pos := lit.Pos() + token.Pos(verb)
	return []SuggestedFix{{
		Message: "wrap the error cause with %w",
		Edits:   []TextEdit{{Pos: pos, End: pos + 1, NewText: "w"}},
	}}
}

// isBlank reports whether expr is the blank identifier.
func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// returnsError reports whether the call's result set contains an error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// infallible exempts calls documented never to return a non-nil error:
// fmt console printing, and writes into in-memory sinks
// (strings.Builder, bytes.Buffer, hash.Hash).
func infallible(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		if strings.HasPrefix(name, "Print") {
			return true // console writes; printbound polices the location
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return inMemorySink(p.Info.TypeOf(call.Args[0])) || isConsole(p, call.Args[0])
		}
	}
	if recv := recvOf(fn); recv != nil {
		return inMemorySink(recv.Type())
	}
	return false
}

// isConsole reports whether expr is os.Stdout or os.Stderr: there is
// nothing a caller can do about a failed console write, so discarding
// the error is the convention (printbound polices where stdout writes
// may live at all).
func isConsole(p *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}

// inMemorySink reports whether t is a writer that cannot fail:
// *strings.Builder, *bytes.Buffer or a hash.Hash implementation.
func inMemorySink(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "strings":
		return obj.Name() == "Builder"
	case "bytes":
		return obj.Name() == "Buffer"
	case "hash":
		return true
	}
	return false
}

// isErrorType reports whether t is the built-in error interface (or a
// named alias of it).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Identical(iface, types.Universe.Lookup("error").Type().Underlying())
}

// calleeName renders the called function for diagnostics.
func calleeName(p *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}
