// Package nwdec's root benchmark harness regenerates every figure of the
// paper's evaluation as a benchmark (one per table/figure), plus
// micro-benchmarks for the core pipeline stages. Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN times a full regeneration of the corresponding figure's
// data; the rendered reports themselves come from cmd/nwsim.
package nwdec

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"runtime"
	"testing"

	"nwdec/internal/cluster"
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/experiments"
	"nwdec/internal/geometry"
	"nwdec/internal/jobs"
	"nwdec/internal/mspt"
	"nwdec/internal/par"
	"nwdec/internal/physics"
	"nwdec/internal/report"
	"nwdec/internal/stats"
	"nwdec/internal/sweep"
	"nwdec/internal/yield"
)

// BenchmarkFig5 regenerates the fabrication-complexity comparison (Fig. 5):
// Φ for tree vs Gray codes in binary, ternary and quaternary logic, N=10.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(experiments.Fig5N)
		if err != nil {
			b.Fatal(err)
		}
		if experiments.Fig5GraySaving(rows) <= 0 {
			b.Fatal("Gray saving lost")
		}
	}
}

// BenchmarkFig6 regenerates the variability surfaces (Fig. 6): sqrt(Σ)/σ_T
// for binary TC/GC/BGC at code lengths 8 and 10, N=20.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		surfaces, err := experiments.Fig6(experiments.Fig6N, []int{8, 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(surfaces) != 6 {
			b.Fatal("wrong surface count")
		}
	}
}

// BenchmarkFig7 regenerates the crossbar-yield sweep (Fig. 7): TC vs BGC
// over lengths 6/8/10 and HC vs AHC over 4/6/8 on the 16 kbit platform.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig7(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 12 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkFig8 regenerates the bit-area sweep (Fig. 8): all five code
// families over their length grids.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig8(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 15 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkHeadline regenerates the paper's headline summary table
// (abstract/conclusion numbers).
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		claims, err := experiments.Headline(core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(claims) != 6 {
			b.Fatal("wrong claim count")
		}
	}
}

// BenchmarkMonteCarloValidation times the functional-simulator validation:
// full 128x128 crossbar fabrications compared against the analytic model.
func BenchmarkMonteCarloValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MonteCarlo(core.Config{}, 1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloScaling runs the validation experiment at fixed worker
// counts (4 trials per design point, so the pool has 12 independent units to
// schedule). The output is bit-identical at every worker count; only the
// wall clock and the scheduling overhead move.
func BenchmarkMonteCarloScaling(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiments.MonteCarloWorkers(context.Background(), core.Config{}, 4, 1, w)
				if err != nil {
					b.Fatal(err)
				}
				if len(points) != 3 {
					b.Fatal("wrong point count")
				}
			}
		})
	}
}

// workerCounts is the deduplicated worker grid of the scaling benchmarks:
// 1/2/4/8 plus GOMAXPROCS when it is not already in the list. The explicit
// dedup keeps the benchmark names unique — a duplicated count used to emit a
// second `workers=1#01` series on single-core hosts, which the benchcmp gate
// then tracked as a separate (noisy) benchmark.
func workerCounts() []int {
	counts := []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
	seen := make(map[int]bool, len(counts))
	out := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkParScaling runs the Fig. 7 sweep at fixed worker counts to expose
// the scaling of the parallel execution engine. The output is bit-identical
// at every worker count; only the wall clock moves. On a single-core host
// the curve is flat — the engine can only help where GOMAXPROCS > 1 — but
// chunked scheduling keeps the multi-worker overhead from inverting it.
func BenchmarkParScaling(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				points, err := experiments.Fig7Workers(context.Background(), core.Config{}, w)
				if err != nil {
					b.Fatal(err)
				}
				if len(points) != 12 {
					b.Fatal("wrong point count")
				}
			}
		})
	}
}

// BenchmarkChunkSweep measures the scheduling overhead of the chunked pool
// directly: a fixed fine-grained workload (16 Ki items of short arithmetic)
// dispatched at 4 workers with explicit chunk sizes, plus the auto heuristic
// (chunk=0). Small chunks expose the per-dispatch cost the heuristic is
// there to amortize.
func BenchmarkChunkSweep(b *testing.B) {
	const n = 16 * 1024
	work := func(i int) float64 {
		x := float64(i%97) * 0.01
		return x*x - x + 0.25
	}
	for _, chunk := range []int{1, 16, 256, 0} {
		name := fmt.Sprintf("chunk=%d", chunk)
		if chunk == 0 {
			name = "chunk=auto"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := par.ForEachChunks(context.Background(), 4, n, chunk,
					func(_ context.Context, lo, hi int) error {
						s := 0.0
						for j := lo; j < hi; j++ {
							s += work(j)
						}
						// The check keeps the arithmetic observable without
						// sharing an accumulator across workers.
						if math.IsNaN(s) {
							return fmt.Errorf("NaN sum in [%d, %d)", lo, hi)
						}
						return nil
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodeGeneration times the arrangement search of each code family
// at the platform's operating point (20 words).
func BenchmarkCodeGeneration(b *testing.B) {
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		b.Run(tp.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := code.New(tp, 2, m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := code.CyclicSequence(g, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJobCheckpoint measures the two I/O legs the async job layer
// adds around a sweep: persisting one chunk checkpoint (atomic JSON
// write into the filesystem store) and the resume scan that serves a
// fully checkpointed job back — store probe per chunk, decode, concat —
// without recomputing any design point.
func BenchmarkJobCheckpoint(b *testing.B) {
	spec := jobs.Spec{
		Grid: sweep.Grid{
			Types:   []code.Type{code.TypeGray, code.TypeHot},
			Lengths: []int{4, 6},
			SigmaTs: []float64{0.04, 0.05, 0.06},
		},
		Chunk: 2,
	}
	points := spec.Grid.Points(core.Config{})
	if len(points) == 0 {
		b.Fatal("empty grid")
	}

	b.Run("persist", func(b *testing.B) {
		store, err := jobs.NewFSStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		id := spec.ID()
		if err := store.PutSpec(id, spec); err != nil {
			b.Fatal(err)
		}
		rows, err := sweep.EvalPoints(context.Background(), 0, points[:spec.Chunk])
		if err != nil {
			b.Fatal(err)
		}
		ds := sweep.Dataset(rows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := store.PutChunk(id, i, ds); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("resume", func(b *testing.B) {
		store, err := jobs.NewFSStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		seed := jobs.NewRunner(store, jobs.Options{})
		st, err := seed.Submit(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if st, err = seed.Wait(context.Background(), st.ID); err != nil || st.State != jobs.StateComplete {
			b.Fatalf("seed job: %v state=%s", err, st.State)
		}
		seed.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := jobs.NewRunner(store, jobs.Options{})
			got, err := r.Resume(context.Background(), st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if got, err = r.Wait(context.Background(), got.ID); err != nil {
				b.Fatal(err)
			}
			if got.Computed != 0 || got.Resumed != st.Chunks {
				b.Fatalf("resume recomputed: computed=%d resumed=%d", got.Computed, got.Resumed)
			}
			page, err := r.Results(got.ID, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			if page.Dataset == nil || len(page.Dataset.Rows) == 0 {
				b.Fatal("empty resumed dataset")
			}
			r.Close()
		}
	})
}

// BenchmarkDistributedChunks times one job chunk through the ring
// executor against an in-process chunk peer: wire marshal, POST
// /peer/chunk, peer-side partition re-derivation and evaluation, and
// dataset parse — the full per-chunk cost a distributed job pays over a
// local one. Chunk ownership round-robins across the ring, so the
// figure mixes peer-served and local chunks the way a real job does.
func BenchmarkDistributedChunks(b *testing.B) {
	spec := jobs.Spec{
		Grid: sweep.Grid{
			Types:   []code.Type{code.TypeGray},
			Lengths: []int{4},
			SigmaTs: []float64{0.04, 0.05, 0.06, 0.07},
		},
		Chunk: 1,
	}
	points := spec.Grid.Points(core.Config{})
	if len(points) == 0 {
		b.Fatal("empty grid")
	}
	ranges := par.Ranges(len(points), spec.Chunk)
	peer := httptest.NewServer(cluster.ChunkHandler("b",
		func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
			return jobs.ServeChunk(ctx, 0, req)
		}))
	defer peer.Close()
	ring, err := jobs.NewRingExecutor(&jobs.LocalExecutor{}, jobs.RingOptions{
		Self:  "a",
		Peers: map[string]string{"b": peer.URL},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(ranges)
		rg := ranges[idx]
		ds, err := ring.Execute(ctx, spec, jobs.Chunk{Index: idx, Points: points[rg.Lo:rg.Hi]})
		if err != nil {
			b.Fatal(err)
		}
		if ds == nil || len(ds.Rows) == 0 {
			b.Fatal("empty chunk dataset")
		}
	}
	b.StopTimer()
	if st := ring.Stats(); b.N >= len(ranges) && st.Served == 0 {
		b.Fatal("no chunk was peer-served: the benchmark no longer measures the wire path")
	}
}

// BenchmarkPlanConstruction times the MSPT matrix algebra (P -> D, S, ν, Φ)
// for a 20x10 half cave.
func BenchmarkPlanConstruction(b *testing.B) {
	g, err := code.NewBalancedGray(2, 10)
	if err != nil {
		b.Fatal(err)
	}
	words, err := g.Sequence(20)
	if err != nil {
		b.Fatal(err)
	}
	doses := []int64{200, 900}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := mspt.NewPlan(words, 2, doses)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Phi() != 40 {
			b.Fatal("unexpected Φ")
		}
	}
}

// BenchmarkFlowReplay times the step-by-step fabrication-flow simulation.
func BenchmarkFlowReplay(b *testing.B) {
	g, _ := code.NewBalancedGray(2, 10)
	words, _ := g.Sequence(20)
	plan, err := mspt.NewPlan(words, 2, []int64{200, 900})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := plan.Run(); res.LithoSteps != 40 {
			b.Fatal("flow diverged")
		}
	}
}

// BenchmarkYieldAnalysis times the analytic addressability analysis of a
// full design point.
func BenchmarkYieldAnalysis(b *testing.B) {
	d, err := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		b.Fatal(err)
	}
	a := d.Analyzer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := a.AnalyzeCrossbar(d.Plan, d.Layout)
		if res.Yield <= 0 {
			b.Fatal("yield collapsed")
		}
	}
}

// BenchmarkDesign times a complete end-to-end decoder design (code search,
// doping plan, layout, yield).
func BenchmarkDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewDesign(core.Config{CodeType: code.TypeGray}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalLayer times one Monte-Carlo fabrication of a 128-wire
// crossbar layer including the conduction-based addressability resolution.
func BenchmarkFunctionalLayer(b *testing.B) {
	d, err := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := crossbar.NewDecoder(d.Plan, d.Quantizer)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crossbar.BuildLayer(dec, d.Layout.Contact, 128, d.Config.SigmaT, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryReadWrite times bit access through the functional memory.
func BenchmarkMemoryReadWrite(b *testing.B) {
	d, _ := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray})
	dec, _ := crossbar.NewDecoder(d.Plan, d.Quantizer)
	rng := stats.NewRNG(2)
	rows, err := crossbar.BuildLayer(dec, d.Layout.Contact, 128, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	cols, _ := crossbar.BuildLayer(dec, d.Layout.Contact, 128, 0, rng)
	mem := crossbar.NewMemory(rows, cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, c := i%128, (i*7)%128
		if err := mem.Write(r, c, i%2 == 0); err != nil {
			b.Fatal(err)
		}
		if _, err := mem.Read(r, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContactPlanning times the layout resolution.
func BenchmarkContactPlanning(b *testing.B) {
	spec := geometry.DefaultCrossbarSpec()
	for i := 0; i < b.N; i++ {
		if _, err := geometry.NewLayout(spec, 10, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhysicsInverse times the numeric inversion of the threshold law.
func BenchmarkPhysicsInverse(b *testing.B) {
	m := physics.DefaultPhysicalModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nd := m.Doping(0.3); nd <= 0 {
			b.Fatal("inversion failed")
		}
	}
}

// BenchmarkRegionProb times the innermost yield primitive.
func BenchmarkRegionProb(b *testing.B) {
	a := yield.Analyzer{SigmaT: 0.05, Margin: 0.25}
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += a.RegionProb(i%20 + 1)
	}
	if s < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkAblationArrangement times the arrangement comparison (Props 4-5
// ablation): counting vs random vs Gray orders of one code space.
func BenchmarkAblationArrangement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationArrangement([]uint64{1, 2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMargin times the margin-factor sensitivity sweep.
func BenchmarkAblationMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMargin([]float64{0.4, 0.7, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiValued times the multi-valued logic extension sweep.
func BenchmarkMultiValued(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiValued(core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseStudy times the variability-model extension (derived sigma
// plus correlated-noise Monte Carlo).
func BenchmarkNoiseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoiseStudy(context.Background(), core.Config{}, 20, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadoutStudy times the analog sensing extension.
func BenchmarkReadoutStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Readout(context.Background(), core.Config{}, 10, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrelatedSampling times one correlated-noise threshold sample of
// a 20x10 half cave.
func BenchmarkCorrelatedSampling(b *testing.B) {
	d, err := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray})
	if err != nil {
		b.Fatal(err)
	}
	np := mspt.NoiseParams{SigmaRandom: 0.035, SigmaSystematic: 0.035}
	rng := stats.NewRNG(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Plan.SampleVTCorrelated(rng, np, d.Quantizer.VTOf)
	}
}

// BenchmarkMaskAnalysis times the mask-reuse analysis of a half-cave plan.
func BenchmarkMaskAnalysis(b *testing.B) {
	d, _ := core.NewDesign(core.Config{CodeType: code.TypeGray})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if set := d.Plan.Masks(); set.Passes != 40 {
			b.Fatal("mask analysis diverged")
		}
	}
}

// BenchmarkHotRank times hot-code ranking via the combinatorial number
// system.
func BenchmarkHotRank(b *testing.B) {
	h, _ := code.NewHot(2, 8)
	words, _ := h.Sequence(h.SpaceSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Rank(words[i%len(words)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportGeneration times the full Markdown reproduction report.
func BenchmarkReportGeneration(b *testing.B) {
	opt := report.DefaultOptions()
	opt.MCTrials = 1
	for i := 0; i < b.N; i++ {
		if _, err := report.Generate(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepGrid times the batch design-space sweep over the default
// Fig. 7/8 grid.
func BenchmarkSweepGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sweep.Run(context.Background(), core.Config{}, sweep.Grid{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatal("unexpected grid size")
		}
	}
}

// engineBenchRequest is the request both engine benchmarks issue: the Fig. 7
// crossbar-yield experiment, the same workload BenchmarkFig7 times directly.
// The pair quantifies the serving layer's cache: cold pays one full compute
// per iteration, warm pays a content-addressed lookup plus a dataset clone.
func engineBenchRequest() engine.Request {
	return engine.Request{Kind: engine.KindExperiment, Experiment: "fig7"}
}

// BenchmarkEngineCold times engine requests that can never hit the cache: a
// fresh engine per iteration, so every Do is a full Fig. 7 regeneration
// behind the serving layer (validation, admission, instrumentation).
func BenchmarkEngineCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(engine.Options{})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := eng.Do(context.Background(), engineBenchRequest())
		if err != nil {
			b.Fatal(err)
		}
		if resp.CacheHit {
			b.Fatal("fresh engine reported a cache hit")
		}
	}
}

// BenchmarkEngineCacheHit times the same request against a warmed engine:
// after the first compute every iteration must be served from the
// content-addressed cache. The acceptance bar is >=10x faster than
// BenchmarkEngineCold.
func BenchmarkEngineCacheHit(b *testing.B) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Do(context.Background(), engineBenchRequest()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Do(context.Background(), engineBenchRequest())
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("warmed engine missed the cache")
		}
	}
}
