// Command nwmem operates a simulated MSPT crossbar memory like a memory
// controller would: it fabricates the array (Monte-Carlo), discovers the
// defective wires with a functional March C- test, builds the
// defect-avoiding logical address space, and stores/retrieves user data
// through the Hamming-ECC layer. The defect map can be dumped as JSON.
//
// Usage:
//
//	nwmem [-code tc|gc|bgc|hc|ahc] [-length M] [-seed S]
//	      [-data "text to store"] [-faults N] [-dumpmap]
//	      [-format text|json|csv|md] [-timeout D]
//	      [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// Text output prints the recovered payload on stdout (the controller log
// goes to stderr); the structured formats emit a one-row session summary
// dataset instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"nwdec/internal/cli"
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
)

func main() {
	var (
		typeName = flag.String("code", "bgc", "code family: tc, gc, bgc, hc, ahc")
		length   = flag.Int("length", 0, "code length M (default 10 tree-based, 6 hot)")
		seed     = flag.Uint64("seed", 2009, "fabrication seed")
		data     = flag.String("data", "Decoding nanowire arrays with the MSPT.", "payload to store through the ECC layer")
		faults   = flag.Int("faults", 8, "soft single-bit faults to inject before readback")
		dumpMap  = flag.Bool("dumpmap", false, "dump the March-test defect map as JSON and exit")
	)
	c := cli.Register("nwmem", "text")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()

	tp, err := code.ParseType(*typeName)
	if err != nil {
		c.Exit(err)
	}
	// Fabrication goes through the engine's uncached kind: the response
	// carries the memory plus the post-fabrication RNG, so the fault
	// injection below continues the same stream the fabrication consumed —
	// the whole session stays a pure function of the seed.
	eng, err := engine.New(engine.Options{})
	if err != nil {
		c.Exit(err)
	}
	resp, err := eng.Do(ctx, engine.Request{
		Kind:    engine.KindFabricate,
		Config:  core.Config{CodeType: tp, CodeLength: *length},
		Seed:    *seed,
		Workers: c.Workers,
	})
	if err != nil {
		c.Exit(err)
	}
	design, mem, rng := resp.Design, resp.Memory, resp.RNG
	rows, cols := mem.Size()
	fmt.Fprintf(os.Stderr, "fabricated %dx%d crossbar (%s, M=%d), usable %.1f%%\n",
		rows, cols, tp, design.Config.CodeLength, 100*mem.UsableFraction())

	// Manufacturing test: discover defects functionally.
	marchFaults := crossbar.MarchCMinus(mem)
	dm, err := crossbar.DefectMapFromFaults(marchFaults, rows, cols)
	if err != nil {
		c.Exit(err)
	}
	fmt.Fprintf(os.Stderr, "March C-: %d faulty crosspoints -> %d bad rows, %d bad columns\n",
		len(marchFaults), len(dm.BadRows), len(dm.BadCols))
	if *dumpMap {
		if err := dm.Write(os.Stdout); err != nil {
			c.Exit(err)
		}
		return
	}

	lm := crossbar.NewLogicalMemory(mem)
	ecc := crossbar.NewECCMemory(lm)
	fmt.Fprintf(os.Stderr, "logical capacity: %d bits, ECC capacity: %d bytes\n",
		lm.Capacity(), ecc.CapacityBytes())

	payload := []byte(*data)
	if len(payload) > ecc.CapacityBytes() {
		c.Exit(fmt.Errorf("payload of %d bytes exceeds ECC capacity %d", len(payload), ecc.CapacityBytes()))
	}
	if err := ecc.StoreBytes(0, payload); err != nil {
		c.Exit(err)
	}
	for i := 0; i < *faults; i++ {
		bit := rng.Intn(14 * len(payload))
		if err := ecc.FlipRawBit(bit); err != nil {
			c.Exit(err)
		}
	}
	back, err := ecc.LoadBytes(0, len(payload))
	if err != nil {
		c.Exit(err)
	}
	fmt.Fprintf(os.Stderr, "injected %d soft faults, ECC corrected %d\n", *faults, ecc.Corrected())
	if c.Format() != dataset.FormatText {
		c.Emit(sessionDataset(design, *seed, mem, len(marchFaults), dm, lm, ecc,
			*faults, string(back) == string(payload)))
	} else {
		fmt.Printf("%s\n", back)
	}
	if string(back) != string(payload) {
		c.Exit(fmt.Errorf("payload corrupted after readback"))
	}
}

// sessionDataset summarizes one controller session as a one-row dataset.
func sessionDataset(design *core.Design, seed uint64, mem *crossbar.Memory,
	marchFaults int, dm crossbar.DefectMap, lm *crossbar.LogicalMemory,
	ecc *crossbar.ECCMemory, injected int, payloadOK bool) *dataset.Dataset {
	ds := dataset.New("nwmem", "Crossbar memory controller session",
		dataset.Col("code", dataset.String),
		dataset.Col("M", dataset.Int),
		dataset.Col("usableFraction", dataset.Float),
		dataset.Col("marchFaults", dataset.Int),
		dataset.Col("badRows", dataset.Int),
		dataset.Col("badCols", dataset.Int),
		dataset.ColUnit("logicalCapacity", "bits", dataset.Int),
		dataset.ColUnit("eccCapacity", "bytes", dataset.Int),
		dataset.Col("injectedFaults", dataset.Int),
		dataset.Col("corrected", dataset.Int),
		dataset.Col("payloadOK", dataset.Bool),
	)
	ds.AddRow(
		design.Config.CodeType.String(),
		design.Config.CodeLength,
		mem.UsableFraction(),
		marchFaults,
		len(dm.BadRows),
		len(dm.BadCols),
		lm.Capacity(),
		ecc.CapacityBytes(),
		injected,
		ecc.Corrected(),
		payloadOK,
	)
	ds.Meta.Seed = seed
	ds.Meta.ConfigHash = design.Config.Fingerprint()
	return ds
}
