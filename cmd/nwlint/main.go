// Command nwlint runs the project's static analyzers over the module
// and reports every violation of the determinism, cancellation,
// concurrency-containment, error-discipline and output-discipline
// invariants (see internal/lint).
//
// Usage:
//
//	nwlint [flags] [./... | package directories]
//
// With no arguments (or "./...") every package of the module is
// checked. Exit codes follow the internal/cli convention: 0 when the
// tree is clean, 1 when diagnostics were found or the analysis failed,
// 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nwdec/internal/cli"
	"nwdec/internal/dataset"
	"nwdec/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a structured JSON dataset")
	rules := flag.String("rules", "", "comma-separated rule subset to run (default: all)")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "nwlint: %v\n", err)
		os.Exit(cli.ExitError)
	}
	usage := func(err error) {
		fmt.Fprintf(os.Stderr, "nwlint: %v\n", err)
		os.Exit(cli.ExitUsage)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		os.Exit(cli.ExitOK)
	}

	analyzers := lint.All()
	if *rules != "" {
		var err error
		analyzers, err = lint.ByName(*rules)
		if err != nil {
			usage(err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fail(err)
	}

	paths, err := targetPaths(loader, flag.Args())
	if err != nil {
		usage(err)
	}

	pkgs := make([]*lint.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(pkgs, analyzers, lint.DefaultConfig(loader.Module))
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Position.Filename = rel
		}
	}

	if *jsonOut {
		if err := lint.Dataset(diags).Render(os.Stdout, dataset.FormatJSON); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nwlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(cli.ExitError)
	}
}

// targetPaths expands the command arguments into module import paths:
// no arguments or "./..." selects every module package; anything else
// is a package directory relative to the working directory.
func targetPaths(loader *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			out = append(out, all...)
			continue
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %q is outside module %s", arg, loader.Module)
		}
		if rel == "." {
			out = append(out, loader.Module)
		} else {
			out = append(out, loader.Module+"/"+filepath.ToSlash(rel))
		}
	}
	return out, nil
}
