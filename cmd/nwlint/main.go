// Command nwlint runs the project's static analyzers over the module
// and reports every violation of the determinism, cancellation,
// concurrency-containment, error-discipline, output-discipline,
// scratch-confinement, atomic-coherence, layering and wire-parity
// invariants (see internal/lint).
//
// Usage:
//
//	nwlint [flags] [./... | package directories]
//
// With no arguments (or "./...") every package of the module is
// checked. Packages are analyzed in dependency order with independent
// packages in parallel (-workers bounds the pool; output is
// byte-identical at every worker count). Diagnostics that carry a
// suggested fix can be applied in place with -fix or previewed as
// unified diffs with -diff (a dry run that never writes). -facts dumps
// the cross-package facts the analyzers exported, for debugging rules
// built on the fact store.
//
// Exit codes follow the internal/cli convention: 0 when the tree is
// clean (with -fix: when every diagnostic was fixed), 1 when
// diagnostics were found or the analysis failed, 2 on a usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nwdec/internal/cli"
	"nwdec/internal/dataset"
	"nwdec/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a structured JSON dataset")
	rules := flag.String("rules", "", "comma-separated rule subset to run (default: all)")
	list := flag.Bool("list", false, "list the available rules and exit")
	workers := flag.Int("workers", 0, "parallel analysis workers (0 = GOMAXPROCS)")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source tree")
	diff := flag.Bool("diff", false, "preview suggested fixes as diffs without writing (dry run)")
	factsOut := flag.String("facts", "", "write the exported analyzer facts as JSON to this file ('-' for stdout)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "nwlint: %v\n", err)
		os.Exit(cli.ExitError)
	}
	usage := func(err error) {
		fmt.Fprintf(os.Stderr, "nwlint: %v\n", err)
		os.Exit(cli.ExitUsage)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		os.Exit(cli.ExitOK)
	}
	if *fix && *jsonOut {
		usage(fmt.Errorf("-fix and -json are mutually exclusive"))
	}

	analyzers := lint.All()
	if *rules != "" {
		var err error
		analyzers, err = lint.ByName(*rules)
		if err != nil {
			usage(err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fail(err)
	}

	paths, err := targetPaths(loader, flag.Args())
	if err != nil {
		usage(err)
	}

	pkgs := make([]*lint.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fail(err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags, facts, err := lint.RunParallelFacts(context.Background(), *workers, pkgs, analyzers, lint.DefaultConfig(loader.Module))
	if err != nil {
		fail(err)
	}

	if *factsOut != "" {
		if err := writeFacts(*factsOut, facts); err != nil {
			fail(err)
		}
	}

	fixed := 0
	if *fix || *diff {
		files, err := lint.ApplyFixes(loader.Fset, diags)
		if err != nil {
			fail(err)
		}
		for _, f := range files {
			if *diff {
				fmt.Print(f.Diff())
			}
			if *fix && !*diff {
				if err := os.WriteFile(f.Path, f.New, 0o644); err != nil {
					fail(err)
				}
				rel := f.Path
				if r, err := filepath.Rel(cwd, f.Path); err == nil && !strings.HasPrefix(r, "..") {
					rel = r
				}
				fmt.Fprintf(os.Stderr, "nwlint: fixed %d issue(s) in %s\n", f.Applied, rel)
			}
			fixed += f.Applied
		}
	}

	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Position.Filename = rel
		}
	}

	if *jsonOut {
		if err := lint.Dataset(diags).Render(os.Stdout, dataset.FormatJSON); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "nwlint: %d diagnostic(s)\n", len(diags))
		}
		// A -fix run that repaired everything leaves a clean tree: exit 0
		// so scripted fix loops terminate.
		if *fix && !*diff && fixed >= len(diags) {
			os.Exit(cli.ExitOK)
		}
		os.Exit(cli.ExitError)
	}
}

// writeFacts renders the exported facts as JSON to path ('-' = stdout).
func writeFacts(path string, facts []lint.FactLine) error {
	if facts == nil {
		facts = []lint.FactLine{}
	}
	raw, err := json.MarshalIndent(facts, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// targetPaths expands the command arguments into module import paths:
// no arguments or "./..." selects every module package; anything else
// is a package directory relative to the working directory.
func targetPaths(loader *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := loader.ModulePackages()
			if err != nil {
				return nil, err
			}
			out = append(out, all...)
			continue
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %q is outside module %s", arg, loader.Module)
		}
		if rel == "." {
			out = append(out, loader.Module)
		} else {
			out = append(out, loader.Module+"/"+filepath.ToSlash(rel))
		}
	}
	return out, nil
}
