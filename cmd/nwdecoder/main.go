// Command nwdecoder designs an MSPT nanowire decoder for a crossbar memory:
// it resolves the code arrangement, doping plan, fabrication complexity,
// variability, yield and bit area for one configuration, or sweeps the
// design space and reports the optimum.
//
// Usage:
//
//	nwdecoder [-type tc|gc|bgc|hc|ahc] [-base n] [-length M]
//	          [-wires N] [-rawbits D] [-sigma V] [-margin F]
//	          [-optimize area|yield|phi] [-flow] [-matrices]
//	          [-format text|json|csv|md] [-timeout D]
//	          [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// -format selects the rendering of the design summary (text is the full
// report; the structured forms carry the one-row analysis table). Designs
// are resolved through the internal/engine serving layer.
package main

import (
	"flag"
	"fmt"
	"os"

	"nwdec/internal/cli"
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/geometry"
	"nwdec/internal/nwerr"
	"nwdec/internal/viz"
)

func main() {
	var (
		typeName = flag.String("type", "bgc", "code family: tc, gc, bgc, hc, ahc")
		base     = flag.Int("base", 2, "logic valency n")
		length   = flag.Int("length", 0, "code length M (default 10 tree-based, 6 hot)")
		wires    = flag.Int("wires", 0, "nanowires per half cave (default 20)")
		rawBits  = flag.Int("rawbits", 0, "raw crosspoint count (default 16384)")
		sigma    = flag.Float64("sigma", 0, "per-dose threshold deviation in volts (default 0.05)")
		margin   = flag.Float64("margin", 0, "margin factor (default 1.0)")
		optimize = flag.String("optimize", "", "sweep all families and optimize: area, yield or phi")
		showFlow = flag.Bool("flow", false, "print the fabrication-flow event log")
		showMat  = flag.Bool("matrices", false, "print the P, D, S and ν matrices")
		export   = flag.String("export", "", "dump the doping plan to stdout: json, csv, svg (layout) or masks-svg")
		showMask = flag.Bool("masks", false, "print the mask-reuse analysis")
	)
	c := cli.Register("nwdecoder", "text")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()

	tp, err := code.ParseType(*typeName)
	if err != nil {
		c.Exit(err)
	}
	cfg := core.Config{CodeType: tp, Base: *base, CodeLength: *length,
		SigmaT: *sigma, MarginFactor: *margin}
	if *wires > 0 || *rawBits > 0 {
		cfg.Spec = geometry.DefaultCrossbarSpec()
		if *wires > 0 {
			cfg.Spec.HalfCaveWires = *wires
		}
		if *rawBits > 0 {
			cfg.Spec.RawBits = *rawBits
		}
	}

	eng, err := engine.New(engine.Options{})
	if err != nil {
		c.Exit(err)
	}
	req := engine.Request{Kind: engine.KindDesign, Config: cfg, Workers: c.Workers}
	if *optimize != "" {
		obj, err := parseObjective(*optimize)
		if err != nil {
			c.Exit(err)
		}
		req.Kind = engine.KindOptimize
		req.Objective = obj
		req.Types = code.AllTypes()
		req.Lengths = []int{4, 6, 8, 10, 12}
	}
	resp, err := eng.Do(ctx, req)
	if err != nil {
		c.Exit(err)
	}
	design := resp.Design
	if *optimize != "" && c.Format() == dataset.FormatText {
		fmt.Printf("optimum over all families and lengths (objective %s):\n\n", *optimize)
	}
	if *export != "" {
		// Machine output only: keep stdout clean for piping.
		switch *export {
		case "json":
			if err := design.Plan.WriteJSON(os.Stdout); err != nil {
				c.Exit(err)
			}
		case "csv":
			if err := design.Plan.WriteCSV(os.Stdout); err != nil {
				c.Exit(err)
			}
		case "svg":
			fmt.Print(viz.DecoderSVG(design.Plan, design.Config.Spec.Params, design.Layout.Contact))
		case "masks-svg":
			fmt.Print(viz.MaskSVG(design.Plan, design.Config.Spec.Params))
		default:
			c.Exit(nwerr.Invalidf("unknown export format %q (want json, csv, svg or masks-svg)", *export))
		}
		return
	}
	if c.Format() != dataset.FormatText {
		// Structured output only: the flow/matrix/mask inspections are
		// text-form diagnostics.
		c.Emit(resp.Dataset)
		return
	}
	fmt.Print(design.Report())
	if *showMask {
		set := design.Plan.Masks()
		fmt.Printf("\nmask set: %d distinct masks for %d passes (reuse factor %.2f)\n",
			set.DistinctMasks(), set.Passes, set.ReuseFactor())
		for _, m := range set.Masks {
			fmt.Printf("  regions %v: %d passes\n", m.Regions, len(m.Passes))
		}
	}
	if *showMat {
		fmt.Println("\npattern matrix P (rows = nanowires in definition order):")
		for _, w := range design.Plan.Pattern() {
			fmt.Printf("  %s\n", w)
		}
		fmt.Println("final doping matrix D (dose units):")
		printMatrix(design.Plan.D())
		fmt.Println("step doping matrix S (dose units; negative = n-type compensation):")
		printMatrix(design.Plan.S())
		fmt.Println("dose-count matrix ν:")
		for _, row := range design.Plan.Nu() {
			fmt.Printf("  %v\n", row)
		}
	}
	if *showFlow {
		fmt.Println("\nfabrication flow:")
		res := design.Plan.Run()
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
		fmt.Printf("total: %d spacers, %d litho/doping passes (Φ)\n",
			design.Plan.N(), res.LithoSteps)
	}
}

func parseObjective(s string) (core.Objective, error) {
	switch s {
	case "area":
		return core.MinBitArea, nil
	case "yield":
		return core.MaxYield, nil
	case "phi":
		return core.MinPhi, nil
	default:
		return 0, nwerr.Invalidf("unknown objective %q (want area, yield or phi)", s)
	}
}

func printMatrix(m [][]int64) {
	for _, row := range m {
		fmt.Print(" ")
		for _, v := range row {
			fmt.Printf(" %5d", v)
		}
		fmt.Println()
	}
}
