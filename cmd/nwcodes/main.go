// Command nwcodes generates and inspects nanowire code arrangements: it
// prints the word sequence of any code family together with its transition
// statistics — the quantities that determine the fabrication complexity and
// variability of the MSPT decoder.
//
// Usage:
//
//	nwcodes [-type tc|gc|bgc|hc|ahc] [-base n] [-length M] [-count N]
package main

import (
	"flag"
	"fmt"
	"os"

	"nwdec/internal/code"
)

func main() {
	var (
		typeName = flag.String("type", "gc", "code family: tc, gc, bgc, hc, ahc")
		base     = flag.Int("base", 2, "logic valency n")
		length   = flag.Int("length", 8, "total code length M (including reflection for tree-based codes)")
		count    = flag.Int("count", 0, "number of words to emit (default: whole space, capped at 64)")
	)
	flag.Parse()

	tp, err := code.ParseType(*typeName)
	if err != nil {
		fail(err)
	}
	gen, err := code.New(tp, *base, *length)
	if err != nil {
		fail(err)
	}
	n := *count
	if n <= 0 {
		n = gen.SpaceSize()
		if n > 64 {
			n = 64
		}
	}
	words, err := code.CyclicSequence(gen, n)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s  base=%d  M=%d  Ω=%d  (showing %d words)\n",
		tp, gen.Base(), gen.Length(), gen.SpaceSize(), len(words))
	if tp.Reflected() {
		fmt.Println("words are reflected: second half is the (n-1)-complement of the first")
	}
	for i, w := range words {
		if i == 0 {
			fmt.Printf("%3d  %s\n", i, w)
			continue
		}
		fmt.Printf("%3d  %s  (%d digit changes)\n", i, w, w.Hamming(words[i-1]))
	}
	st := code.Stats(words)
	fmt.Printf("\ntransitions: total=%d  per-step min/max=%d/%d  per-digit=%v (max %d)\n",
		st.TotalTransitions, st.MinPerStep, st.MaxPerStep, st.PerDigit, st.MaxPerDigit)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nwcodes:", err)
	os.Exit(1)
}
