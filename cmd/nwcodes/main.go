// Command nwcodes generates and inspects nanowire code arrangements: it
// prints the word sequence of any code family together with its transition
// statistics — the quantities that determine the fabrication complexity and
// variability of the MSPT decoder.
//
// Usage:
//
//	nwcodes [-type tc|gc|bgc|hc|ahc] [-base n] [-length M] [-count N]
//	        [-format text|json|csv|md] [-timeout D]
//	        [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// The structured formats carry one row per word (index, word, digit changes
// from the previous word); text keeps the annotated listing. Listings are
// produced by the internal/engine serving layer (its codes kind), the same
// dataset the nwserve HTTP facade returns.
package main

import (
	"flag"

	"nwdec/internal/cli"
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/engine"
	"nwdec/internal/nwerr"
)

func main() {
	var (
		typeName = flag.String("type", "gc", "code family: tc, gc, bgc, hc, ahc")
		base     = flag.Int("base", 2, "logic valency n")
		length   = flag.Int("length", 8, "total code length M (including reflection for tree-based codes)")
		count    = flag.Int("count", 0, "number of words to emit (default: whole space, capped at 64)")
	)
	c := cli.Register("nwcodes", "text")
	flag.Parse()
	// The generators are synchronous, so the context itself is unused, but
	// Context/Close bracket the run to activate -metrics and -pprof.
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()

	tp, err := code.ParseType(*typeName)
	if err != nil {
		c.Exit(nwerr.Invalid(err))
	}
	eng, err := engine.New(engine.Options{})
	if err != nil {
		c.Exit(err)
	}
	resp, err := eng.Do(ctx, engine.Request{
		Kind:   engine.KindCodes,
		Config: core.Config{CodeType: tp, Base: *base, CodeLength: *length},
		Count:  *count,
	})
	if err != nil {
		c.Exit(err)
	}
	c.Emit(resp.Dataset)
}
