// Command nwcodes generates and inspects nanowire code arrangements: it
// prints the word sequence of any code family together with its transition
// statistics — the quantities that determine the fabrication complexity and
// variability of the MSPT decoder.
//
// Usage:
//
//	nwcodes [-type tc|gc|bgc|hc|ahc] [-base n] [-length M] [-count N]
//	        [-format text|json|csv|md] [-timeout D]
//	        [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// The structured formats carry one row per word (index, word, digit changes
// from the previous word); text keeps the annotated listing.
package main

import (
	"flag"
	"fmt"
	"strings"

	"nwdec/internal/cli"
	"nwdec/internal/code"
	"nwdec/internal/dataset"
)

func main() {
	var (
		typeName = flag.String("type", "gc", "code family: tc, gc, bgc, hc, ahc")
		base     = flag.Int("base", 2, "logic valency n")
		length   = flag.Int("length", 8, "total code length M (including reflection for tree-based codes)")
		count    = flag.Int("count", 0, "number of words to emit (default: whole space, capped at 64)")
	)
	c := cli.Register("nwcodes", "text")
	flag.Parse()
	// The generators are synchronous, so the context itself is unused, but
	// Context/Close bracket the run to activate -metrics and -pprof.
	_, cancel := c.Context()
	defer cancel()
	defer c.Close()

	tp, err := code.ParseType(*typeName)
	if err != nil {
		c.Fail(err)
	}
	gen, err := code.New(tp, *base, *length)
	if err != nil {
		c.Fail(err)
	}
	n := *count
	if n <= 0 {
		n = gen.SpaceSize()
		if n > 64 {
			n = 64
		}
	}
	words, err := code.CyclicSequence(gen, n)
	if err != nil {
		c.Fail(err)
	}
	c.Emit(wordsDataset(tp, gen, words))
}

// wordsDataset packages the word listing; its text rendering is the
// annotated sequence plus the transition statistics.
func wordsDataset(tp code.Type, gen code.Generator, words []code.Word) *dataset.Dataset {
	ds := dataset.New("nwcodes",
		fmt.Sprintf("%s word sequence (base=%d, M=%d)", tp, gen.Base(), gen.Length()),
		dataset.Col("index", dataset.Int),
		dataset.Col("word", dataset.String),
		dataset.Col("digitChanges", dataset.Int),
	)
	for i, w := range words {
		changes := 0
		if i > 0 {
			changes = w.Hamming(words[i-1])
		}
		ds.AddRow(i, w.String(), changes)
	}
	st := code.Stats(words)
	ds.Note("transitions: total=%d  per-step min/max=%d/%d  per-digit=%v (max %d)",
		st.TotalTransitions, st.MinPerStep, st.MaxPerStep, st.PerDigit, st.MaxPerDigit)
	ds.SetText(func() string { return renderWords(tp, gen, words) })
	return ds
}

// renderWords is the historical text listing.
func renderWords(tp code.Type, gen code.Generator, words []code.Word) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  base=%d  M=%d  Ω=%d  (showing %d words)\n",
		tp, gen.Base(), gen.Length(), gen.SpaceSize(), len(words))
	if tp.Reflected() {
		sb.WriteString("words are reflected: second half is the (n-1)-complement of the first\n")
	}
	for i, w := range words {
		if i == 0 {
			fmt.Fprintf(&sb, "%3d  %s\n", i, w)
			continue
		}
		fmt.Fprintf(&sb, "%3d  %s  (%d digit changes)\n", i, w, w.Hamming(words[i-1]))
	}
	st := code.Stats(words)
	fmt.Fprintf(&sb, "\ntransitions: total=%d  per-step min/max=%d/%d  per-digit=%v (max %d)\n",
		st.TotalTransitions, st.MinPerStep, st.MaxPerStep, st.PerDigit, st.MaxPerDigit)
	return sb.String()
}
