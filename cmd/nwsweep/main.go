// Command nwsweep evaluates the decoder design space over parameter grids
// and emits tidy CSV (or JSON/Markdown/text via -format) for downstream
// analysis — the batch scientific-tooling front end of the library.
//
// Usage:
//
//	nwsweep [-types tc,gc,bgc,hc,ahc] [-lengths 4,6,8,10]
//	        [-sigmas 0.05] [-margins 1.0] [-wires 20] [-workers W]
//	        [-format csv|json|md|text] [-timeout D]
//	        [-job] [-job-store DIR] [-chunk N] [-resume ID]
//	        [-peers ID=URL,...] [-node-id ID]
//	        [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR] > sweep.csv
//
// The grid is evaluated on W workers (0 = GOMAXPROCS) through the
// internal/engine serving layer; the output is bit-identical at every
// worker count. The design-point count goes to stderr so stdout stays a
// clean data stream.
//
// With -job the sweep runs through the internal/jobs checkpoint layer
// instead of the synchronous engine: the grid is partitioned into
// chunks of -chunk points, each chunk is checkpointed as it completes,
// and with -job-store the checkpoints are durable — a killed run
// restarted as `nwsweep -resume ID -job-store DIR` serves the finished
// chunks from disk and computes only the remainder, with output
// byte-identical to the uninterrupted run. The job id and a final
// chunks=/computed=/resumed= accounting line go to stderr. Job-mode
// output renders the dataset form in every format (the historical
// fixed-precision CSV writer applies only to synchronous sweeps).
//
// With -peers ("b=http://host2:8607,...") job chunks route to their
// owners on the fleet's consistent-hash ring (the nwserve nodes serve
// POST /peer/chunk), with bounded retries and local compute as the
// fallback for any peer failure. Checkpointing stays in this process,
// so distributed output is byte-identical to a single-process run; a
// final ring accounting line goes to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nwdec/internal/cli"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/jobs"
	"nwdec/internal/nwerr"
	"nwdec/internal/sweep"
)

func main() {
	var (
		typesArg   = flag.String("types", "", "comma-separated code families (default: all)")
		lengthsArg = flag.String("lengths", "", "comma-separated code lengths (default: 4,6,8,10)")
		sigmasArg  = flag.String("sigmas", "", "comma-separated per-dose sigmas in volts (default: 0.05)")
		marginsArg = flag.String("margins", "", "comma-separated margin factors (default: 1.0)")
		wiresArg   = flag.String("wires", "", "comma-separated half-cave populations (default: 20)")
		jobMode    = flag.Bool("job", false, "run the sweep as a checkpointed async job")
		jobStore   = flag.String("job-store", "", "checkpoint directory for -job (empty = in-memory, no kill/restart durability)")
		chunk      = flag.Int("chunk", 0, "design points per job chunk (0 = jobs default)")
		resume     = flag.String("resume", "", "resume the job with this id from -job-store (implies -job; grid flags are ignored)")
		peersFlag  = flag.String("peers", "", "other fleet nodes as ID=URL,ID=URL: route job chunks to their ring owners (needs -job)")
		nodeID     = flag.String("node-id", "local", "this process's ring identity for -peers")
	)
	c := cli.Register("nwsweep", "csv")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()

	grid := sweep.Grid{}
	var err error
	if grid.Types, err = cli.Types(*typesArg); err != nil {
		c.Exit(err)
	}
	if grid.Lengths, err = cli.Ints(*lengthsArg); err != nil {
		c.Exit(err)
	}
	if grid.HalfCaveWires, err = cli.Ints(*wiresArg); err != nil {
		c.Exit(err)
	}
	if grid.SigmaTs, err = cli.Floats(*sigmasArg); err != nil {
		c.Exit(err)
	}
	if grid.MarginFactors, err = cli.Floats(*marginsArg); err != nil {
		c.Exit(err)
	}

	if *jobMode || *resume != "" {
		if err := runJob(ctx, c, grid, *jobStore, *chunk, *resume, *peersFlag, *nodeID); err != nil {
			c.Exit(err)
		}
		return
	}
	if *peersFlag != "" {
		c.Exit(nwerr.Invalidf("nwsweep: -peers needs -job (chunks route over the ring only in job mode)"))
	}

	eng, err := engine.New(engine.Options{})
	if err != nil {
		c.Exit(err)
	}
	resp, err := eng.Do(ctx, engine.Request{
		Kind:    engine.KindSweep,
		Grid:    grid,
		Workers: c.Workers,
	})
	if err != nil {
		c.Exit(err)
	}
	// The CSV path keeps the historical fixed-precision writer so existing
	// pipelines see byte-identical output; the other formats render the
	// dataset form.
	if c.Format() == dataset.FormatCSV {
		if err := sweep.WriteCSV(os.Stdout, resp.Rows); err != nil {
			c.Exit(err)
		}
	} else {
		c.Emit(resp.Dataset)
	}
	fmt.Fprintf(os.Stderr, "nwsweep: %d design points\n", len(resp.Rows))
}

// runJob executes the sweep through the checkpointed job layer: submit
// (or resume) against the configured store, wait for the terminal state
// and emit the assembled dataset. The final accounting line distinguishes
// chunks computed this run from chunks resumed off checkpoints — the
// observable proof that a resumed run did not recompute finished work.
func runJob(ctx context.Context, c *cli.Common, grid sweep.Grid, storeDir string, chunk int, resume, peersArg, nodeID string) error {
	var store jobs.Store
	if storeDir != "" {
		fs, err := jobs.NewFSStore(storeDir)
		if err != nil {
			return err
		}
		store = fs
	} else {
		if resume != "" {
			return nwerr.Invalidf("nwsweep: -resume needs -job-store (an in-memory store has no checkpoints to resume)")
		}
		store = jobs.NewMemoryStore()
	}
	// With -peers, chunks route to their ring owners (bounded retries,
	// local fallback on any peer failure); checkpointing stays here, so
	// output is byte-identical to a single-process run.
	var (
		exec jobs.Executor
		ring *jobs.RingExecutor
	)
	if peersArg != "" {
		peers, err := cli.Peers(peersArg)
		if err != nil {
			return err
		}
		if ring, err = jobs.NewRingExecutor(&jobs.LocalExecutor{Workers: c.Workers}, jobs.RingOptions{Self: nodeID, Peers: peers}); err != nil {
			return err
		}
		exec = &jobs.RetryExecutor{Next: ring}
	}
	runner := jobs.NewRunner(store, jobs.Options{Workers: c.Workers, Executor: exec, Node: nodeID})
	defer runner.Close()

	var (
		st  jobs.Status
		err error
	)
	if resume != "" {
		st, err = runner.Resume(ctx, resume)
	} else {
		st, err = runner.Submit(ctx, jobs.Spec{Grid: grid, Chunk: chunk})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nwsweep: job %s submitted: %d points in %d chunks\n", st.ID, st.Points, st.Chunks)

	st, err = runner.Wait(ctx, st.ID)
	if err != nil {
		return err
	}
	if st.State != jobs.StateComplete {
		err := fmt.Errorf("nwsweep: job %s ended %s: %s", st.ID, st.State, st.Error)
		if st.State == jobs.StateCanceled {
			return nwerr.Canceled(err)
		}
		return err
	}
	page, err := runner.Results(st.ID, 0, 0)
	if err != nil {
		return err
	}
	c.Emit(page.Dataset)
	fmt.Fprintf(os.Stderr, "nwsweep: job %s complete: chunks=%d computed=%d resumed=%d\n",
		st.ID, st.Chunks, st.Computed, st.Resumed)
	if ring != nil {
		rs := ring.Stats()
		fmt.Fprintf(os.Stderr, "nwsweep: ring %s: routed=%d peer_served=%d peer_errors=%d\n",
			nodeID, rs.Chunks, rs.Served, rs.Errors)
	}
	return nil
}
