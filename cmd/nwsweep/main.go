// Command nwsweep evaluates the decoder design space over parameter grids
// and emits tidy CSV (or JSON/Markdown/text via -format) for downstream
// analysis — the batch scientific-tooling front end of the library.
//
// Usage:
//
//	nwsweep [-types tc,gc,bgc,hc,ahc] [-lengths 4,6,8,10]
//	        [-sigmas 0.05] [-margins 1.0] [-wires 20] [-workers W]
//	        [-format csv|json|md|text] [-timeout D]
//	        [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR] > sweep.csv
//
// The grid is evaluated on W workers (0 = GOMAXPROCS) through the
// internal/engine serving layer; the output is bit-identical at every
// worker count. The design-point count goes to stderr so stdout stays a
// clean data stream.
package main

import (
	"flag"
	"fmt"
	"os"

	"nwdec/internal/cli"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/sweep"
)

func main() {
	var (
		typesArg   = flag.String("types", "", "comma-separated code families (default: all)")
		lengthsArg = flag.String("lengths", "", "comma-separated code lengths (default: 4,6,8,10)")
		sigmasArg  = flag.String("sigmas", "", "comma-separated per-dose sigmas in volts (default: 0.05)")
		marginsArg = flag.String("margins", "", "comma-separated margin factors (default: 1.0)")
		wiresArg   = flag.String("wires", "", "comma-separated half-cave populations (default: 20)")
	)
	c := cli.Register("nwsweep", "csv")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()

	grid := sweep.Grid{}
	var err error
	if grid.Types, err = cli.Types(*typesArg); err != nil {
		c.Exit(err)
	}
	if grid.Lengths, err = cli.Ints(*lengthsArg); err != nil {
		c.Exit(err)
	}
	if grid.HalfCaveWires, err = cli.Ints(*wiresArg); err != nil {
		c.Exit(err)
	}
	if grid.SigmaTs, err = cli.Floats(*sigmasArg); err != nil {
		c.Exit(err)
	}
	if grid.MarginFactors, err = cli.Floats(*marginsArg); err != nil {
		c.Exit(err)
	}

	eng, err := engine.New(engine.Options{})
	if err != nil {
		c.Exit(err)
	}
	resp, err := eng.Do(ctx, engine.Request{
		Kind:    engine.KindSweep,
		Grid:    grid,
		Workers: c.Workers,
	})
	if err != nil {
		c.Exit(err)
	}
	// The CSV path keeps the historical fixed-precision writer so existing
	// pipelines see byte-identical output; the other formats render the
	// dataset form.
	if c.Format() == dataset.FormatCSV {
		if err := sweep.WriteCSV(os.Stdout, resp.Rows); err != nil {
			c.Exit(err)
		}
	} else {
		c.Emit(resp.Dataset)
	}
	fmt.Fprintf(os.Stderr, "nwsweep: %d design points\n", len(resp.Rows))
}
