// Command nwsweep evaluates the decoder design space over parameter grids
// and emits tidy CSV for downstream analysis — the batch scientific-tooling
// front end of the library.
//
// Usage:
//
//	nwsweep [-types tc,gc,bgc,hc,ahc] [-lengths 4,6,8,10]
//	        [-sigmas 0.05] [-margins 1.0] [-wires 20] [-workers W] > sweep.csv
//
// The grid is evaluated on W workers (0 = GOMAXPROCS); the CSV is
// bit-identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/sweep"
)

func main() {
	var (
		typesArg   = flag.String("types", "", "comma-separated code families (default: all)")
		lengthsArg = flag.String("lengths", "", "comma-separated code lengths (default: 4,6,8,10)")
		sigmasArg  = flag.String("sigmas", "", "comma-separated per-dose sigmas in volts (default: 0.05)")
		marginsArg = flag.String("margins", "", "comma-separated margin factors (default: 1.0)")
		wiresArg   = flag.String("wires", "", "comma-separated half-cave populations (default: 20)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	grid := sweep.Grid{}
	var err error
	if *typesArg != "" {
		for _, s := range strings.Split(*typesArg, ",") {
			tp, err := code.ParseType(s)
			if err != nil {
				fail(err)
			}
			grid.Types = append(grid.Types, tp)
		}
	}
	if grid.Lengths, err = parseInts(*lengthsArg); err != nil {
		fail(err)
	}
	if grid.HalfCaveWires, err = parseInts(*wiresArg); err != nil {
		fail(err)
	}
	if grid.SigmaTs, err = parseFloats(*sigmasArg); err != nil {
		fail(err)
	}
	if grid.MarginFactors, err = parseFloats(*marginsArg); err != nil {
		fail(err)
	}

	rows, err := sweep.RunWorkers(core.Config{}, grid, *workers)
	if err != nil {
		fail(err)
	}
	if err := sweep.WriteCSV(os.Stdout, rows); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "nwsweep: %d design points\n", len(rows))
}

func parseInts(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(arg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(arg string) ([]float64, error) {
	if arg == "" {
		return nil, nil
	}
	var out []float64
	for _, s := range strings.Split(arg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid number %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nwsweep:", err)
	os.Exit(1)
}
