// Command nwsim regenerates the paper's evaluation: every figure of Sec. 6
// plus the headline summary and a Monte-Carlo validation of the statistical
// platform.
//
// Usage:
//
//	nwsim [-exp fig5|fig6|fig7|fig8|headline|montecarlo|all]
//	      [-wires N] [-rawbits D] [-sigma V] [-margin F] [-trials T] [-seed S]
//	      [-workers W] [-format text|json|csv|md] [-timeout D]
//	      [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// Parallelized experiments run on W workers (0 = GOMAXPROCS); their output
// is bit-identical at every worker count. -format selects the rendering of
// the experiment dataset; -timeout cancels the run's context after the
// given duration. -metrics renders an observability snapshot (worker task
// counts, per-experiment span times, trial counters) on exit — to stderr
// or the -metrics-out file, so stdout stays byte-identical — and -pprof
// captures CPU/heap profiles plus an execution trace into a directory.
//
// Experiments are submitted through the internal/engine serving layer, so
// a repeated experiment within one invocation (or one nwserve process) is
// served from the result cache.
package main

import (
	"flag"
	"fmt"

	"nwdec/internal/cli"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/experiments"
	"nwdec/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: fig5, fig6, fig7, fig8, headline, montecarlo, all")
		wires   = flag.Int("wires", 0, "nanowires per half cave (default: paper platform, 20)")
		rawBits = flag.Int("rawbits", 0, "raw crosspoint count D_RAW (default 16384)")
		sigma   = flag.Float64("sigma", 0, "per-dose threshold deviation in volts (default 0.05)")
		margin  = flag.Float64("margin", 0, "margin factor relative to half the level spacing (default 1.0)")
		trials  = flag.Int("trials", experiments.DefaultMCTrials, "Monte-Carlo repetitions for the validation experiment")
		seed    = flag.Uint64("seed", experiments.DefaultSeed, "Monte-Carlo seed")
		md      = flag.Bool("markdown", false, "emit the full reproduction report as Markdown instead")
	)
	c := cli.Register("nwsim", "text")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()

	var cfg core.Config
	if *wires > 0 {
		if cfg.Spec.RawBits == 0 {
			cfg = cfg.WithDefaults()
		}
		cfg.Spec.HalfCaveWires = *wires
	}
	if *rawBits > 0 {
		if cfg.Spec.RawBits == 0 {
			cfg = cfg.WithDefaults()
		}
		cfg.Spec.RawBits = *rawBits
	}
	cfg.SigmaT = *sigma
	cfg.MarginFactor = *margin

	if *md {
		opt := report.DefaultOptions()
		opt.Cfg = cfg
		opt.MCTrials = *trials
		opt.Seed = *seed
		opt.Workers = c.Workers
		out, err := report.Generate(ctx, opt)
		if err != nil {
			c.Exit(err)
		}
		fmt.Print(out)
		return
	}

	eng, err := engine.New(engine.Options{})
	if err != nil {
		c.Exit(err)
	}
	req := engine.Request{
		Kind:    engine.KindExperiment,
		Config:  cfg,
		Seed:    *seed,
		Trials:  *trials,
		Workers: c.Workers,
	}
	if *exp == "all" {
		names := engine.ExperimentNames()
		dss := make([]*dataset.Dataset, 0, len(names))
		for _, name := range names {
			req.Experiment = name
			resp, err := eng.Do(ctx, req)
			if err != nil {
				c.Exit(fmt.Errorf("experiments: %s: %w", name, err))
			}
			dss = append(dss, resp.Dataset)
		}
		c.EmitAll(dss)
		return
	}
	req.Experiment = *exp
	resp, err := eng.Do(ctx, req)
	if err != nil {
		c.Exit(err)
	}
	c.Emit(resp.Dataset)
}
