// Command nwserve is the HTTP JSON facade of the decoder pipeline: a
// minimal stdlib net/http server that exposes the internal/engine serving
// layer — designs, optimization, Monte-Carlo yield, experiments, sweeps
// and code listings — with the engine's result cache, singleflight
// deduplication and admission control shared across all clients of the
// process.
//
// Usage:
//
//	nwserve [-addr HOST:PORT] [-cache-entries N] [-cache-cost C]
//	        [-inflight N] [-shed] [-node-id ID] [-peers ID=URL,...]
//	        [-job-store DIR] [-job-gc D] [-workers W] [-timeout D]
//	        [-smoke] [-peer-smoke]
//	        [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// Endpoints (JSON):
//
//	GET  /healthz                 liveness probe
//	GET  /v1/experiments          experiment name list
//	GET  /v1/experiment/{name}    one experiment dataset (?seed=&trials=)
//	GET  /v1/design               one design (?type=&base=&length=&sigma=&margin=&wires=&rawbits=)
//	GET  /v1/optimize             best design (?objective=area|yield|phi + design params)
//	GET  /v1/montecarlo           empirical yield (?trials=&seed= + design params)
//	GET  /v1/sweep                grid sweep (?types=&lengths=&sigmas=&margins=&wires=)
//	GET  /v1/codes                word listing (?type=&base=&length=&count=)
//	POST /v1/jobs                 submit an async grid job (body: jobs.Spec JSON) → 202 + status
//	GET  /v1/jobs/{id}            job status
//	GET  /v1/jobs/{id}/results    checkpointed output so far (?from=&max= chunks)
//	DELETE /v1/jobs/{id}          remove a terminal job and its checkpoints → 204
//
// Synchronous responses carry X-Cache (hit, miss, or hit-peer/miss-peer
// when a cluster peer served the result) and X-Request-Key headers. Job
// responses carry X-Job-State (and, on results, X-Job-Chunks: the chunk
// count included in the body) so pollers can follow progress without
// parsing bodies; /results streams the contiguous checkpointed prefix
// incrementally and serves partial output for running jobs. With
// -job-store the job layer checkpoints to disk and a restarted server
// resumes submitted specs without recomputing finished chunks; without
// it jobs are in-memory only. Errors map from the internal/nwerr
// taxonomy through nwerr.HTTPStatus: Invalid is 400, Canceled is 408,
// Overload is 503 with a Retry-After hint, NotFound (unknown
// experiments, unknown job ids) is 404, Internal is 500. With -shed (the
// default) a saturated engine rejects new work with 503 instead of
// queueing it, and recovers as soon as in-flight work drains — no
// restart needed.
//
// Multi-node serving: -peers names the other nodes of a fleet
// ("b=http://host2:8607,c=http://host3:8607") and -node-id this node's
// own ring identity. Every node then routes each request key to its
// owner on a shared consistent-hash ring (POST /peer/, an internal
// route), so the fleet computes and caches each key once; a dead peer
// degrades that key to local computation, never to an error. See
// internal/cluster.
//
// Peered jobs distribute the same way: each chunk of a submitted job
// routes to its chunk key's ring owner over POST /peer/chunk (responses
// carry X-Job-Node and X-Chunk-Key), wrapped in bounded retries, with
// local compute as the fallback for any peer failure — the submitting
// node still owns every checkpoint, so results stay byte-identical to a
// single-node run. -job-gc AGE collects terminal jobs whose store state
// has not changed for AGE (it needs -job-store); DELETE /v1/jobs/{id}
// removes one terminal job on demand. See internal/jobs and DESIGN §15.
//
// The server shuts down gracefully when its context is cancelled: on
// SIGINT/SIGTERM or when -timeout elapses. -smoke starts the server on a
// loopback port, issues one self-request, verifies the response and
// exits; -peer-smoke starts a two-node in-process fleet, fetches the
// same experiment twice through the non-owning node and verifies
// miss-peer then hit-peer — the CI checks for the single-node and
// clustered paths.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nwdec/internal/cli"
	"nwdec/internal/cluster"
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/geometry"
	"nwdec/internal/jobs"
	"nwdec/internal/nwerr"
	"nwdec/internal/sweep"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8607", "listen address")
		cacheEntries = flag.Int("cache-entries", 0, "result-cache entry cap (0 = engine default)")
		cacheCost    = flag.Int64("cache-cost", 0, "result-cache total cost cap in cells (0 = engine default)")
		inflight     = flag.Int("inflight", 0, "max concurrently computing requests (0 = GOMAXPROCS)")
		shed         = flag.Bool("shed", true, "reject work with 503 when admission is saturated instead of queueing")
		nodeID       = flag.String("node-id", "", "this node's ring identity (required with -peers)")
		peersFlag    = flag.String("peers", "", "other fleet nodes as ID=URL,ID=URL (enables cluster routing)")
		jobStore     = flag.String("job-store", "", "checkpoint directory for async jobs (empty = in-memory, no kill/restart durability)")
		jobGC        = flag.Duration("job-gc", 0, "collect terminal jobs untouched for this long (0 = never; needs -job-store)")
		smoke        = flag.Bool("smoke", false, "start on a loopback port, self-request once, verify and exit")
		peerSmoke    = flag.Bool("peer-smoke", false, "start a two-node in-process fleet, verify miss-peer then hit-peer and exit")
	)
	c := cli.Register("nwserve", "json")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *peerSmoke {
		if err := runPeerSmoke(ctx, c.Workers); err != nil {
			c.Exit(err)
		}
		fmt.Fprintln(os.Stderr, "nwserve: peer smoke ok (miss-peer then hit-peer via the key's owner)")
		return
	}

	eng, err := engine.New(engine.Options{
		MaxEntries:  *cacheEntries,
		MaxCost:     *cacheCost,
		MaxInFlight: *inflight,
		Shed:        *shed,
	})
	if err != nil {
		c.Exit(err)
	}
	var backend engine.Backend = eng
	var exec jobs.Executor
	if *peersFlag != "" {
		peers, err := cli.Peers(*peersFlag)
		if err != nil {
			c.Exit(err)
		}
		pb, err := cluster.NewPeerBackend(eng, cluster.Options{Self: *nodeID, Peers: peers})
		if err != nil {
			c.Exit(err)
		}
		backend = pb
		// Peered jobs route chunks across the same membership: ring
		// owner first, bounded retries around it, local compute as the
		// everywhere-fallback.
		ring, err := jobs.NewRingExecutor(&jobs.LocalExecutor{Workers: c.Workers}, jobs.RingOptions{Self: *nodeID, Peers: peers})
		if err != nil {
			c.Exit(err)
		}
		exec = &jobs.RetryExecutor{Next: ring}
		fmt.Fprintf(os.Stderr, "nwserve: cluster node %q, ring %v\n", *nodeID, pb.Ring().Nodes())
	}
	var store jobs.Store
	if *jobStore != "" {
		if store, err = jobs.NewFSStore(*jobStore); err != nil {
			c.Exit(err)
		}
	} else {
		store = jobs.NewMemoryStore()
	}
	node := *nodeID
	if node == "" {
		node = "local"
	}
	runner := jobs.NewRunner(store, jobs.Options{Workers: c.Workers, Executor: exec, Node: node})
	defer runner.Close()
	if *jobGC > 0 {
		if *jobStore == "" {
			c.Exit(nwerr.Invalidf("-job-gc needs -job-store (an in-memory store records no ages)"))
		}
		go gcLoop(ctx, runner, *jobGC)
	}
	srv := &server{eng: eng, backend: backend, runner: runner, workers: c.Workers, node: node}
	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		c.Exit(err)
	}
	hs := &http.Server{
		Handler:     srv.mux(),
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "nwserve: listening on http://%s\n", ln.Addr())

	if *smoke {
		if err := smokeTest(ctx, ln.Addr().String()); err != nil {
			if serr := shutdown(hs, served); serr != nil {
				fmt.Fprintf(os.Stderr, "nwserve: %v\n", serr)
			}
			c.Exit(err)
		}
		if err := shutdown(hs, served); err != nil {
			c.Exit(err)
		}
		fmt.Fprintln(os.Stderr, "nwserve: smoke ok (request served, graceful shutdown)")
		return
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nwserve: shutting down")
		if err := shutdown(hs, served); err != nil {
			c.Exit(err)
		}
	case err := <-served:
		if err != nil && err != http.ErrServerClosed {
			c.Exit(err)
		}
	}
}

// gcLoop periodically collects terminal jobs older than maxAge from the
// runner's store, until ctx is done. The sweep interval is a quarter of
// the age bound (floored at a second) so a job is collected within ~25%
// of its eligibility.
func gcLoop(ctx context.Context, runner *jobs.Runner, maxAge time.Duration) {
	interval := maxAge / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			removed, err := runner.GC(ctx, time.Now(), maxAge, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nwserve: job gc: %v\n", err)
				continue
			}
			if len(removed) > 0 {
				fmt.Fprintf(os.Stderr, "nwserve: job gc collected %d job(s)\n", len(removed))
			}
		}
	}
}

// shutdown drains in-flight requests with a bounded grace period and
// collects the Serve goroutine's exit.
func shutdown(hs *http.Server, served chan error) error {
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-served; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// smokeTest issues one experiment request against the just-started
// server and verifies a 200 with a parseable dataset body plus the
// engine's response headers, then exercises the async job path: submit a
// small grid job, poll its status to completion, and fetch the assembled
// results.
func smokeTest(ctx context.Context, addr string) error {
	name, cache, err := fetchExperiment(ctx, "http://"+addr, "fig5")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	if name != "fig5" {
		return fmt.Errorf("smoke: dataset name %q, want fig5", name)
	}
	if cache != "hit" && cache != "miss" {
		return fmt.Errorf("smoke: X-Cache %q, want hit or miss", cache)
	}
	if err := jobSmoke(ctx, "http://"+addr); err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	return nil
}

// jobSmoke drives one tiny job through POST /v1/jobs, the status poll
// and GET /results, verifying the 202 → complete → dataset lifecycle.
func jobSmoke(ctx context.Context, base string) error {
	rctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	// code.Type serializes as its enum int (1 = Gray code), matching the
	// engine wire form.
	body := `{"grid":{"Types":[1],"Lengths":[4],"SigmaTs":[0.05]},"chunk":1}`
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /v1/jobs: status %d: %s", resp.StatusCode, data)
	}
	var st jobs.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("job status body: %w", err)
	}
	for st.State == jobs.StateRunning {
		time.Sleep(20 * time.Millisecond)
		get, err := http.NewRequestWithContext(rctx, http.MethodGet, base+"/v1/jobs/"+st.ID, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(get)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/jobs/%s: status %d: %s", st.ID, resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("job status body: %w", err)
		}
	}
	if st.State != jobs.StateComplete {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	get, err := http.NewRequestWithContext(rctx, http.MethodGet, base+"/v1/jobs/"+st.ID+"/results", nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(get)
	if err != nil {
		return err
	}
	data, err = io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/jobs/%s/results: status %d: %s", st.ID, resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Job-State"); got != string(jobs.StateComplete) {
		return fmt.Errorf("results X-Job-State %q, want complete", got)
	}
	var doc struct {
		Name string  `json:"name"`
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("results body: %w", err)
	}
	if doc.Name != "sweep" || len(doc.Rows) == 0 {
		return fmt.Errorf("results dataset %q with %d rows, want non-empty sweep", doc.Name, len(doc.Rows))
	}
	// Terminal jobs are deletable: 204 once, 404 after.
	for _, round := range []struct {
		desc string
		want int
	}{
		{"first", http.StatusNoContent},
		{"second", http.StatusNotFound},
	} {
		desc, want := round.desc, round.want
		del, err := http.NewRequestWithContext(rctx, http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(del)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if resp.StatusCode != want {
			return fmt.Errorf("%s DELETE /v1/jobs/%s: status %d, want %d: %s", desc, st.ID, resp.StatusCode, want, data)
		}
	}
	return nil
}

// runPeerSmoke is the clustered self-check: it starts two cross-peered
// nodes in this process, routes the same experiment request twice
// through the node that does NOT own its key, and verifies the first
// fetch computes on the owner (miss-peer) and the second is served from
// the owner's cache (hit-peer). It exercises the full peer path — ring
// lookup, POST /peer/, wire round trip, dataset re-parse — the way the
// -smoke flag exercises the single-node path.
func runPeerSmoke(ctx context.Context, workers int) error {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if cerr := lnA.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", cerr)
		}
		return err
	}
	urls := map[string]string{
		"a": "http://" + lnA.Addr().String(),
		"b": "http://" + lnB.Addr().String(),
	}
	node := func(self, peer string) (*server, error) {
		eng, err := engine.New(engine.Options{Shed: true})
		if err != nil {
			return nil, err
		}
		pb, err := cluster.NewPeerBackend(eng, cluster.Options{
			Self:  self,
			Peers: map[string]string{peer: urls[peer]},
		})
		if err != nil {
			return nil, err
		}
		return &server{eng: eng, backend: pb, workers: workers}, nil
	}
	srvA, err := node("a", "b")
	if err != nil {
		return err
	}
	srvB, err := node("b", "a")
	if err != nil {
		return err
	}
	serve := func(ln net.Listener, s *server) (*http.Server, chan error) {
		hs := &http.Server{
			Handler:     s.mux(),
			BaseContext: func(net.Listener) context.Context { return ctx },
		}
		served := make(chan error, 1)
		go func() { served <- hs.Serve(ln) }()
		return hs, served
	}
	hsA, servedA := serve(lnA, srvA)
	hsB, servedB := serve(lnB, srvB)

	err = func() error {
		// Ask the node that does not own the key, so the request must
		// cross the peer protocol. Both rings are built from the same
		// membership, so both nodes agree on the owner.
		req := engine.Request{Kind: engine.KindExperiment, Experiment: "fig5"}
		owner := srvA.backend.(*cluster.PeerBackend).Ring().Owner(req.Key())
		asker := "a"
		if owner == "a" {
			asker = "b"
		}
		fmt.Fprintf(os.Stderr, "nwserve: peer smoke: key owner %q, asking %q\n", owner, asker)
		for _, want := range []string{"miss-peer", "hit-peer"} {
			name, cache, err := fetchExperiment(ctx, urls[asker], "fig5")
			if err != nil {
				return fmt.Errorf("peer smoke: %w", err)
			}
			if name != "fig5" {
				return fmt.Errorf("peer smoke: dataset name %q, want fig5", name)
			}
			if cache != want {
				return fmt.Errorf("peer smoke: X-Cache %q, want %q", cache, want)
			}
		}
		return nil
	}()

	if serr := shutdown(hsA, servedA); err == nil {
		err = serr
	}
	if serr := shutdown(hsB, servedB); err == nil {
		err = serr
	}
	return err
}

// fetchExperiment GETs /v1/experiment/{name} from a node and returns the
// dataset name from the body and the X-Cache header.
func fetchExperiment(ctx context.Context, base, experiment string) (name, cache string, err error) {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, base+"/v1/experiment/"+experiment, nil)
	if err != nil {
		return "", "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", "", err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("GET %s/v1/experiment/%s: status %d: %s", base, experiment, resp.StatusCode, body)
	}
	var doc struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return "", "", fmt.Errorf("response is not dataset JSON: %w", err)
	}
	return doc.Name, resp.Header.Get("X-Cache"), nil
}

// server holds the shared engine behind the HTTP handlers. Public
// handlers submit through backend — the cluster routing layer when
// -peers is configured, the engine itself otherwise. The /peer/ route
// always serves from eng directly, so a request arriving from a peer
// computes here instead of bouncing around the ring.
type server struct {
	eng     *engine.Engine
	backend engine.Backend
	runner  *jobs.Runner
	workers int
	node    string
}

// mux wires the routes using Go 1.22 method+path patterns.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.Handle("POST "+cluster.PeerPath, cluster.PeerHandler(s.eng))
	// The chunk route is more specific than PeerPath, so it wins the
	// dispatch. Chunks from peers always compute here (ServeChunk is a
	// local evaluation), never re-route — same no-bouncing rule as /peer/.
	m.Handle("POST "+cluster.ChunkPath, cluster.ChunkHandler(s.node,
		func(ctx context.Context, req engine.ChunkRequest) (string, *dataset.Dataset, error) {
			return jobs.ServeChunk(ctx, s.workers, req)
		}))
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := fmt.Fprintln(w, `{"status":"ok"}`); err != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
		}
	})
	m.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(engine.ExperimentNames()); err != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
		}
	})
	m.HandleFunc("GET /v1/experiment/{name}", s.handle(func(r *http.Request) (engine.Request, error) {
		// An unknown name flows through engine validation, which
		// classifies it NotFound → 404.
		req := engine.Request{Kind: engine.KindExperiment, Experiment: r.PathValue("name")}
		var err error
		if req.Seed, err = queryUint(r, "seed", 0); err != nil {
			return req, err
		}
		if req.Trials, err = queryInt(r, "trials", 0); err != nil {
			return req, err
		}
		return req, nil
	}))
	m.HandleFunc("GET /v1/design", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		return engine.Request{Kind: engine.KindDesign, Config: cfg}, err
	}))
	m.HandleFunc("GET /v1/optimize", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		if err != nil {
			return engine.Request{}, err
		}
		req := engine.Request{Kind: engine.KindOptimize, Config: cfg}
		switch obj := r.URL.Query().Get("objective"); obj {
		case "", "area":
			req.Objective = core.MinBitArea
		case "yield":
			req.Objective = core.MaxYield
		case "phi":
			req.Objective = core.MinPhi
		default:
			return req, nwerr.Invalidf("unknown objective %q (want area, yield or phi)", obj)
		}
		return req, nil
	}))
	m.HandleFunc("GET /v1/montecarlo", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		if err != nil {
			return engine.Request{}, err
		}
		req := engine.Request{Kind: engine.KindMonteCarlo, Config: cfg}
		if req.Trials, err = queryInt(r, "trials", 4); err != nil {
			return req, err
		}
		if req.Seed, err = queryUint(r, "seed", 2009); err != nil {
			return req, err
		}
		return req, nil
	}))
	m.HandleFunc("GET /v1/sweep", s.handle(func(r *http.Request) (engine.Request, error) {
		q := r.URL.Query()
		var (
			grid sweep.Grid
			err  error
		)
		if grid.Types, err = cli.Types(q.Get("types")); err != nil {
			return engine.Request{}, err
		}
		if grid.Lengths, err = cli.Ints(q.Get("lengths")); err != nil {
			return engine.Request{}, err
		}
		if grid.SigmaTs, err = cli.Floats(q.Get("sigmas")); err != nil {
			return engine.Request{}, err
		}
		if grid.MarginFactors, err = cli.Floats(q.Get("margins")); err != nil {
			return engine.Request{}, err
		}
		if grid.HalfCaveWires, err = cli.Ints(q.Get("wires")); err != nil {
			return engine.Request{}, err
		}
		return engine.Request{Kind: engine.KindSweep, Grid: grid}, nil
	}))
	m.HandleFunc("GET /v1/codes", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		if err != nil {
			return engine.Request{}, err
		}
		req := engine.Request{Kind: engine.KindCodes, Config: cfg}
		if req.Count, err = queryInt(r, "count", 0); err != nil {
			return req, err
		}
		return req, nil
	}))
	m.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	m.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	m.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	m.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	return m
}

// handleJobDelete removes a terminal job and its checkpoints. A running
// job answers 400 (cancel it first), an unknown id 404, success 204.
func (s *server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.runner.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobSubmit accepts a jobs.Spec body, submits (or joins — the id
// is content-addressed, so resubmission is idempotent) and answers 202
// with the job status. A restarted server resubmitting a spec whose
// store already holds checkpoints resumes it automatically.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, nwerr.Invalidf("jobs: decoding spec: %v", err))
		return
	}
	st, err := s.runner.Submit(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJobStatus(w, st, http.StatusAccepted)
}

// handleJobStatus answers the job's live (or store-derived) status.
func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.runner.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJobStatus(w, st, http.StatusOK)
}

// handleJobResults serves the checkpointed output of a job: the dataset
// assembled from up to max chunks (?max=, 0 = all) starting at chunk
// ?from=. Running jobs serve their partial prefix — pollers page with
// from = chunks-already-fetched to stream increments — and X-Job-State /
// X-Job-Chunks carry progress without body parsing. An empty window is
// 204 No Content.
func (s *server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	from, err := queryInt(r, "from", 0)
	if err != nil {
		writeError(w, err)
		return
	}
	max, err := queryInt(r, "max", 0)
	if err != nil {
		writeError(w, err)
		return
	}
	page, err := s.runner.Results(r.PathValue("id"), from, max)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Job-State", string(page.Status.State))
	w.Header().Set("X-Job-Chunks", strconv.Itoa(page.Count))
	if page.Dataset == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := page.Dataset.Render(w, dataset.FormatJSON); err != nil {
		fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
	}
}

// writeJobStatus renders one job status as JSON with the X-Job-State
// header.
func writeJobStatus(w http.ResponseWriter, st jobs.Status, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-State", string(st.State))
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(st); err != nil {
		fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
	}
}

// handle adapts a request parser into an HTTP handler: parse, submit to
// the serving backend with the server's worker bound, map the error
// class to a status, render the dataset as JSON.
func (s *server) handle(parse func(*http.Request) (engine.Request, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := parse(r)
		if err != nil {
			writeError(w, err)
			return
		}
		req.Workers = s.workers
		resp, err := s.backend.Handle(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-Key", resp.Key)
		w.Header().Set("X-Cache", cacheStatus(resp))
		if resp.Dataset == nil {
			if _, err := fmt.Fprintln(w, `{}`); err != nil {
				fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
			}
			return
		}
		if err := resp.Dataset.Render(w, dataset.FormatJSON); err != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
		}
	}
}

// cacheStatus renders the response provenance for the X-Cache header:
// hit/miss for locally served requests, hit-peer/miss-peer when the
// key's owning node served it over the cluster protocol (the hit/miss
// verdict is then the owner's).
func cacheStatus(resp *engine.Response) string {
	status := "miss"
	if resp.CacheHit {
		status = "hit"
	}
	if resp.Peer {
		status += "-peer"
	}
	return status
}

// writeError renders the nwerr class as an HTTP status (via
// nwerr.HTTPStatus: Invalid 400, Canceled 408, Overload 503, NotFound
// 404, Internal 500) and a JSON body. A 503 carries Retry-After so
// well-behaved clients back off instead of hammering a saturated server.
func writeError(w http.ResponseWriter, err error) {
	status := nwerr.HTTPStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(map[string]string{
		"error": err.Error(),
		"class": nwerr.ClassOf(err).String(),
	}); err != nil {
		fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
	}
}

// queryConfig assembles a core.Config from the shared design parameters.
func queryConfig(r *http.Request) (core.Config, error) {
	q := r.URL.Query()
	var cfg core.Config
	if t := q.Get("type"); t != "" {
		tp, err := code.ParseType(t)
		if err != nil {
			return cfg, nwerr.Invalid(err)
		}
		cfg.CodeType = tp
	}
	var err error
	if cfg.Base, err = queryInt(r, "base", 0); err != nil {
		return cfg, err
	}
	if cfg.CodeLength, err = queryInt(r, "length", 0); err != nil {
		return cfg, err
	}
	if cfg.SigmaT, err = queryFloat(r, "sigma", 0); err != nil {
		return cfg, err
	}
	if cfg.MarginFactor, err = queryFloat(r, "margin", 0); err != nil {
		return cfg, err
	}
	wires, err := queryInt(r, "wires", 0)
	if err != nil {
		return cfg, err
	}
	rawBits, err := queryInt(r, "rawbits", 0)
	if err != nil {
		return cfg, err
	}
	if wires > 0 || rawBits > 0 {
		cfg.Spec = geometry.DefaultCrossbarSpec()
		if wires > 0 {
			cfg.Spec.HalfCaveWires = wires
		}
		if rawBits > 0 {
			cfg.Spec.RawBits = rawBits
		}
	}
	return cfg, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, nwerr.Invalidf("query %s: invalid integer %q", name, s)
	}
	return v, nil
}

func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, nwerr.Invalidf("query %s: invalid unsigned integer %q", name, s)
	}
	return v, nil
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, nwerr.Invalidf("query %s: invalid number %q", name, s)
	}
	return v, nil
}
