// Command nwserve is the HTTP JSON facade of the decoder pipeline: a
// minimal stdlib net/http server that exposes the internal/engine serving
// layer — designs, optimization, Monte-Carlo yield, experiments, sweeps
// and code listings — with the engine's result cache, singleflight
// deduplication and admission control shared across all clients of the
// process.
//
// Usage:
//
//	nwserve [-addr HOST:PORT] [-cache-entries N] [-cache-cost C]
//	        [-inflight N] [-workers W] [-timeout D] [-smoke]
//	        [-metrics text|json|csv|md] [-metrics-out FILE] [-pprof DIR]
//
// Endpoints (all GET, all JSON):
//
//	/healthz                     liveness probe
//	/v1/experiments              experiment name list
//	/v1/experiment/{name}        one experiment dataset (?seed=&trials=)
//	/v1/design                   one design (?type=&base=&length=&sigma=&margin=&wires=&rawbits=)
//	/v1/optimize                 best design (?objective=area|yield|phi + design params)
//	/v1/montecarlo               empirical yield (?trials=&seed= + design params)
//	/v1/sweep                    grid sweep (?types=&lengths=&sigmas=&margins=&wires=)
//	/v1/codes                    word listing (?type=&base=&length=&count=)
//
// Responses carry X-Cache (hit/miss) and X-Request-Key headers. Errors
// map from the internal/nwerr taxonomy: Invalid is 400, Canceled is 503,
// Internal is 500. The server shuts down gracefully when its context is
// cancelled: on SIGINT/SIGTERM or when -timeout elapses. -smoke starts
// the server on a loopback port, issues one self-request, verifies the
// response and exits — the CI liveness check.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"nwdec/internal/cli"
	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/dataset"
	"nwdec/internal/engine"
	"nwdec/internal/geometry"
	"nwdec/internal/nwerr"
	"nwdec/internal/sweep"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8607", "listen address")
		cacheEntries = flag.Int("cache-entries", 0, "result-cache entry cap (0 = engine default)")
		cacheCost    = flag.Int64("cache-cost", 0, "result-cache total cost cap in cells (0 = engine default)")
		inflight     = flag.Int("inflight", 0, "max concurrently computing requests (0 = GOMAXPROCS)")
		smoke        = flag.Bool("smoke", false, "start on a loopback port, self-request once, verify and exit")
	)
	c := cli.Register("nwserve", "json")
	flag.Parse()
	ctx, cancel := c.Context()
	defer cancel()
	defer c.Close()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &server{
		eng: engine.New(engine.Options{
			MaxEntries:  *cacheEntries,
			MaxCost:     *cacheCost,
			MaxInFlight: *inflight,
		}),
		workers: c.Workers,
	}
	listenAddr := *addr
	if *smoke {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		c.Exit(err)
	}
	hs := &http.Server{
		Handler:     srv.mux(),
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "nwserve: listening on http://%s\n", ln.Addr())

	if *smoke {
		if err := smokeTest(ctx, ln.Addr().String()); err != nil {
			if serr := shutdown(hs, served); serr != nil {
				fmt.Fprintf(os.Stderr, "nwserve: %v\n", serr)
			}
			c.Exit(err)
		}
		if err := shutdown(hs, served); err != nil {
			c.Exit(err)
		}
		fmt.Fprintln(os.Stderr, "nwserve: smoke ok (request served, graceful shutdown)")
		return
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nwserve: shutting down")
		if err := shutdown(hs, served); err != nil {
			c.Exit(err)
		}
	case err := <-served:
		if err != nil && err != http.ErrServerClosed {
			c.Exit(err)
		}
	}
}

// shutdown drains in-flight requests with a bounded grace period and
// collects the Serve goroutine's exit.
func shutdown(hs *http.Server, served chan error) error {
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-served; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// smokeTest issues one experiment request against the just-started server
// and verifies a 200 with a parseable dataset body plus the engine's
// response headers.
func smokeTest(ctx context.Context, addr string) error {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://"+addr+"/v1/experiment/fig5", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("smoke: GET /v1/experiment/fig5: status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("smoke: response is not dataset JSON: %w", err)
	}
	if doc.Name != "fig5" {
		return fmt.Errorf("smoke: dataset name %q, want fig5", doc.Name)
	}
	return nil
}

// server holds the shared engine behind the HTTP handlers.
type server struct {
	eng     *engine.Engine
	workers int
}

// mux wires the routes using Go 1.22 method+path patterns.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := fmt.Fprintln(w, `{"status":"ok"}`); err != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
		}
	})
	m.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(engine.ExperimentNames()); err != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
		}
	})
	m.HandleFunc("GET /v1/experiment/{name}", s.handle(func(r *http.Request) (engine.Request, error) {
		req := engine.Request{Kind: engine.KindExperiment, Experiment: r.PathValue("name")}
		if !engine.ExperimentKnown(req.Experiment) {
			return req, &notFoundError{nwerr.Invalidf(
				"unknown experiment %q (see /v1/experiments)", req.Experiment)}
		}
		var err error
		if req.Seed, err = queryUint(r, "seed", 0); err != nil {
			return req, err
		}
		if req.Trials, err = queryInt(r, "trials", 0); err != nil {
			return req, err
		}
		return req, nil
	}))
	m.HandleFunc("GET /v1/design", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		return engine.Request{Kind: engine.KindDesign, Config: cfg}, err
	}))
	m.HandleFunc("GET /v1/optimize", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		if err != nil {
			return engine.Request{}, err
		}
		req := engine.Request{Kind: engine.KindOptimize, Config: cfg}
		switch obj := r.URL.Query().Get("objective"); obj {
		case "", "area":
			req.Objective = core.MinBitArea
		case "yield":
			req.Objective = core.MaxYield
		case "phi":
			req.Objective = core.MinPhi
		default:
			return req, nwerr.Invalidf("unknown objective %q (want area, yield or phi)", obj)
		}
		return req, nil
	}))
	m.HandleFunc("GET /v1/montecarlo", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		if err != nil {
			return engine.Request{}, err
		}
		req := engine.Request{Kind: engine.KindMonteCarlo, Config: cfg}
		if req.Trials, err = queryInt(r, "trials", 4); err != nil {
			return req, err
		}
		if req.Seed, err = queryUint(r, "seed", 2009); err != nil {
			return req, err
		}
		return req, nil
	}))
	m.HandleFunc("GET /v1/sweep", s.handle(func(r *http.Request) (engine.Request, error) {
		q := r.URL.Query()
		var (
			grid sweep.Grid
			err  error
		)
		if grid.Types, err = cli.Types(q.Get("types")); err != nil {
			return engine.Request{}, err
		}
		if grid.Lengths, err = cli.Ints(q.Get("lengths")); err != nil {
			return engine.Request{}, err
		}
		if grid.SigmaTs, err = cli.Floats(q.Get("sigmas")); err != nil {
			return engine.Request{}, err
		}
		if grid.MarginFactors, err = cli.Floats(q.Get("margins")); err != nil {
			return engine.Request{}, err
		}
		if grid.HalfCaveWires, err = cli.Ints(q.Get("wires")); err != nil {
			return engine.Request{}, err
		}
		return engine.Request{Kind: engine.KindSweep, Grid: grid}, nil
	}))
	m.HandleFunc("GET /v1/codes", s.handle(func(r *http.Request) (engine.Request, error) {
		cfg, err := queryConfig(r)
		if err != nil {
			return engine.Request{}, err
		}
		req := engine.Request{Kind: engine.KindCodes, Config: cfg}
		if req.Count, err = queryInt(r, "count", 0); err != nil {
			return req, err
		}
		return req, nil
	}))
	return m
}

// handle adapts a request parser into an HTTP handler: parse, submit to
// the engine with the server's worker bound, map the error class to a
// status, render the dataset as JSON.
func (s *server) handle(parse func(*http.Request) (engine.Request, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := parse(r)
		if err != nil {
			writeError(w, err)
			return
		}
		req.Workers = s.workers
		resp, err := s.eng.Do(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-Key", resp.Key)
		if resp.CacheHit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		if resp.Dataset == nil {
			if _, err := fmt.Fprintln(w, `{}`); err != nil {
				fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
			}
			return
		}
		if err := resp.Dataset.Render(w, dataset.FormatJSON); err != nil {
			fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
		}
	}
}

// notFoundError marks a request naming a resource outside the served set
// (an unknown experiment); writeError maps it to 404 instead of the 400
// its invalid classification would otherwise produce.
type notFoundError struct{ err error }

func (e *notFoundError) Error() string { return e.err.Error() }
func (e *notFoundError) Unwrap() error { return e.err }

// writeError renders the nwerr class as an HTTP status and a JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch nwerr.ClassOf(err) {
	case nwerr.ClassInvalid:
		status = http.StatusBadRequest
	case nwerr.ClassCanceled:
		status = http.StatusServiceUnavailable
	}
	var nf *notFoundError
	if errors.As(err, &nf) {
		status = http.StatusNotFound
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(map[string]string{
		"error": err.Error(),
		"class": nwerr.ClassOf(err).String(),
	}); err != nil {
		fmt.Fprintf(os.Stderr, "nwserve: %v\n", err)
	}
}

// queryConfig assembles a core.Config from the shared design parameters.
func queryConfig(r *http.Request) (core.Config, error) {
	q := r.URL.Query()
	var cfg core.Config
	if t := q.Get("type"); t != "" {
		tp, err := code.ParseType(t)
		if err != nil {
			return cfg, nwerr.Invalid(err)
		}
		cfg.CodeType = tp
	}
	var err error
	if cfg.Base, err = queryInt(r, "base", 0); err != nil {
		return cfg, err
	}
	if cfg.CodeLength, err = queryInt(r, "length", 0); err != nil {
		return cfg, err
	}
	if cfg.SigmaT, err = queryFloat(r, "sigma", 0); err != nil {
		return cfg, err
	}
	if cfg.MarginFactor, err = queryFloat(r, "margin", 0); err != nil {
		return cfg, err
	}
	wires, err := queryInt(r, "wires", 0)
	if err != nil {
		return cfg, err
	}
	rawBits, err := queryInt(r, "rawbits", 0)
	if err != nil {
		return cfg, err
	}
	if wires > 0 || rawBits > 0 {
		cfg.Spec = geometry.DefaultCrossbarSpec()
		if wires > 0 {
			cfg.Spec.HalfCaveWires = wires
		}
		if rawBits > 0 {
			cfg.Spec.RawBits = rawBits
		}
	}
	return cfg, nil
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, nwerr.Invalidf("query %s: invalid integer %q", name, s)
	}
	return v, nil
}

func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, nwerr.Invalidf("query %s: invalid unsigned integer %q", name, s)
	}
	return v, nil
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, nwerr.Invalidf("query %s: invalid number %q", name, s)
	}
	return v, nil
}
