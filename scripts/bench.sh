#!/bin/sh
# bench.sh — run the parallel-engine benchmark suite and record the results
# as BENCH_parallel.json in the repository root.
#
# Usage:  scripts/bench.sh [benchtime] [output]
#
# benchtime is passed to -benchtime (default 50x: enough iterations to warm
# the generator memoization cache and average out scheduler noise). output
# is the JSON path to write (default BENCH_parallel.json, the committed
# baseline; CI passes a scratch path so a fresh measurement never clobbers
# the baseline it is compared against). The JSON is an array of one
# metadata object {meta, benchtime, gomaxprocs, cpu} followed by one object
# {name, workers, iterations, ns_per_op, bytes_per_op, allocs_per_op} per
# benchmark. The metadata records the host parallelism: on a single-core
# host the BenchmarkParScaling curve is necessarily flat, because the
# engine changes only where work runs, never what is computed.
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-50x}"

out="${2:-BENCH_parallel.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
	-bench 'BenchmarkFig7$|BenchmarkFig8$|BenchmarkMonteCarloValidation$|BenchmarkSweepGrid$|BenchmarkParScaling|BenchmarkMonteCarloScaling|BenchmarkChunkSweep|BenchmarkJobCheckpoint|BenchmarkDistributedChunks' \
	-benchmem -benchtime "$benchtime" . | tee "$tmp"

awk -v benchtime="$benchtime" '
/^cpu:/ { cpu = substr($0, 6); gsub(/^ +| +$/, "", cpu) }
/^Benchmark/ {
	name = $1
	# The trailing -N is the GOMAXPROCS the run used; Go omits it when
	# GOMAXPROCS is 1.
	if (match(name, /-[0-9]+$/)) {
		gmp = substr(name, RSTART + 1)
		name = substr(name, 1, RSTART - 1)
	} else {
		gmp = 1
	}
	workers = "null"
	if (match(name, /workers=[0-9]+/)) {
		workers = substr(name, RSTART + 8, RLENGTH - 8)
	}
	bytes = "null"; allocs = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bytes = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	rows[++n] = sprintf("  {\"name\": \"%s\", \"workers\": %s, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		name, workers, $2, $3, bytes, allocs)
}
END {
	print "["
	if (gmp == "") gmp = "null"
	printf "  {\"meta\": true, \"benchtime\": \"%s\", \"gomaxprocs\": %s, \"cpu\": \"%s\"}", benchtime, gmp, cpu
	for (i = 1; i <= n; i++) printf ",\n%s", rows[i]
	print "\n]"
}
' "$tmp" > "$out"

echo "wrote $out"
