package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeBench writes a bench.sh-shaped JSON file mapping names to ns/op.
func writeBench(t *testing.T, dir, name string, ns map[string]float64) string {
	t.Helper()
	return writeBenchAllocs(t, dir, name, ns, nil)
}

// writeBenchAllocs is writeBench with per-benchmark allocs/op (0 when a
// name is missing from allocs).
func writeBenchAllocs(t *testing.T, dir, name string, ns map[string]float64, allocs map[string]float64) string {
	t.Helper()
	entries := []string{`  {"meta": true, "benchtime": "50x", "gomaxprocs": 4, "cpu": "test"}`}
	names := make([]string, 0, len(ns))
	for n := range ns {
		names = append(names, n)
	}
	// Deterministic file contents for stable failure messages.
	sort.Strings(names)
	for _, n := range names {
		entries = append(entries, fmt.Sprintf(`  {"name": %q, "workers": null, "iterations": 50, "ns_per_op": %g, "bytes_per_op": 0, "allocs_per_op": %g}`, n, ns[n], allocs[n]))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte("[\n"+strings.Join(entries, ",\n")+"\n]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDetectsInjectedSlowdown is the gate's self-test: a 2x ns/op slowdown
// injected into BenchmarkParScaling must be flagged, warn-only by default
// and fatal under -strict.
func TestDetectsInjectedSlowdown(t *testing.T) {
	t.Setenv("CI_BENCH_STRICT", "")
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{
		"BenchmarkParScaling/workers=1": 200000,
		"BenchmarkParScaling/workers=4": 100000,
		"BenchmarkFig7":                 250000,
	})
	cur := writeBench(t, dir, "cur.json", map[string]float64{
		"BenchmarkParScaling/workers=1": 205000, // within noise
		"BenchmarkParScaling/workers=4": 200000, // injected 2x slowdown
		"BenchmarkFig7":                 240000,
	})

	report, code := run([]string{"-baseline", base, "-current", cur})
	if code != 0 {
		t.Errorf("warn mode exit = %d, want 0\n%s", code, report)
	}
	if !strings.Contains(report, "BenchmarkParScaling/workers=4") || !strings.Contains(report, "<< REGRESSION") {
		t.Errorf("slowdown not flagged:\n%s", report)
	}
	if !strings.Contains(report, "WARNING: 1 regression(s)") {
		t.Errorf("warn summary wrong:\n%s", report)
	}
	if strings.Count(report, "<< REGRESSION") != 1 {
		t.Errorf("want exactly one regression:\n%s", report)
	}

	report, code = run([]string{"-baseline", base, "-current", cur, "-strict"})
	if code != 1 {
		t.Errorf("strict mode exit = %d, want 1\n%s", code, report)
	}

	// CI_BENCH_STRICT=1 flips the default without the flag.
	t.Setenv("CI_BENCH_STRICT", "1")
	if _, code = run([]string{"-baseline", base, "-current", cur}); code != 1 {
		t.Errorf("CI_BENCH_STRICT=1 exit = %d, want 1", code)
	}
}

// TestThresholdBoundary pins the gate exactly at the +-20% default: +19%
// passes, +21% regresses, and a -50% improvement never fails.
func TestThresholdBoundary(t *testing.T) {
	t.Setenv("CI_BENCH_STRICT", "")
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{
		"BenchmarkA": 100000,
		"BenchmarkB": 100000,
		"BenchmarkC": 100000,
	})
	cur := writeBench(t, dir, "cur.json", map[string]float64{
		"BenchmarkA": 119000,
		"BenchmarkB": 121000,
		"BenchmarkC": 50000,
	})
	report, code := run([]string{"-baseline", base, "-current", cur, "-strict"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, report)
	}
	if strings.Count(report, "<< REGRESSION") != 1 || !regressionLine(report, "BenchmarkB") {
		t.Errorf("only BenchmarkB (+21%%) should regress:\n%s", report)
	}

	// A looser threshold lets +21% through.
	if report, code = run([]string{"-baseline", base, "-current", cur, "-strict", "-threshold", "0.25"}); code != 0 {
		t.Errorf("threshold 0.25 exit = %d, want 0\n%s", code, report)
	}
}

// TestDetectsAllocRegression is the alloc gate's self-test: an allocs/op
// increase beyond the threshold must be flagged even when ns/op is flat,
// warn-only by default and fatal under -strict; alloc improvements and
// in-noise drift pass.
func TestDetectsAllocRegression(t *testing.T) {
	t.Setenv("CI_BENCH_STRICT", "")
	dir := t.TempDir()
	base := writeBenchAllocs(t, dir, "base.json",
		map[string]float64{"BenchmarkA": 100000, "BenchmarkB": 100000, "BenchmarkC": 100000},
		map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 1000, "BenchmarkC": 1000})
	cur := writeBenchAllocs(t, dir, "cur.json",
		map[string]float64{"BenchmarkA": 100000, "BenchmarkB": 100000, "BenchmarkC": 100000},
		map[string]float64{"BenchmarkA": 1500, "BenchmarkB": 1190, "BenchmarkC": 200})

	report, code := run([]string{"-baseline", base, "-current", cur})
	if code != 0 {
		t.Errorf("warn mode exit = %d, want 0\n%s", code, report)
	}
	if strings.Count(report, "<< ALLOC-REGRESSION") != 1 {
		t.Errorf("want exactly one alloc regression (BenchmarkA +50%%):\n%s", report)
	}
	if !strings.Contains(report, "WARNING: 1 regression(s)") {
		t.Errorf("warn summary wrong:\n%s", report)
	}
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, "BenchmarkA") && !strings.Contains(line, "<< ALLOC-REGRESSION") {
			t.Errorf("BenchmarkA alloc regression not flagged:\n%s", report)
		}
	}

	if _, code = run([]string{"-baseline", base, "-current", cur, "-strict"}); code != 1 {
		t.Errorf("strict mode exit = %d, want 1", code)
	}
	// A looser threshold lets +50% through.
	if report, code = run([]string{"-baseline", base, "-current", cur, "-strict", "-threshold", "0.6"}); code != 0 {
		t.Errorf("threshold 0.6 exit = %d, want 0\n%s", code, report)
	}
}

// regressionLine reports whether the report flags name as a regression.
func regressionLine(report, name string) bool {
	for _, line := range strings.Split(report, "\n") {
		if strings.Contains(line, name) && strings.Contains(line, "<< REGRESSION") {
			return true
		}
	}
	return false
}

// TestSetDifferences checks the removed/new benchmark notes.
func TestSetDifferences(t *testing.T) {
	t.Setenv("CI_BENCH_STRICT", "")
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkOld": 1000, "BenchmarkBoth": 1000})
	cur := writeBench(t, dir, "cur.json", map[string]float64{"BenchmarkNew": 1000, "BenchmarkBoth": 1000})
	report, code := run([]string{"-baseline", base, "-current", cur})
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, report)
	}
	if !strings.Contains(report, "BenchmarkOld") || !strings.Contains(report, "only in baseline") {
		t.Errorf("removed benchmark not noted:\n%s", report)
	}
	if !strings.Contains(report, "BenchmarkNew") || !strings.Contains(report, "only in current") {
		t.Errorf("new benchmark not noted:\n%s", report)
	}
}

// TestUsageErrors checks the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	t.Setenv("CI_BENCH_STRICT", "")
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", map[string]float64{"BenchmarkA": 1000})
	if _, code := run(nil); code != 2 {
		t.Errorf("missing -current: exit %d, want 2", code)
	}
	if _, code := run([]string{"-baseline", base, "-current", filepath.Join(dir, "missing.json")}); code != 2 {
		t.Errorf("unreadable current: exit %d, want 2", code)
	}
	if _, code := run([]string{"-baseline", base, "-current", base, "-threshold", "0"}); code != 2 {
		t.Errorf("zero threshold: exit %d, want 2", code)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := run([]string{"-baseline", empty, "-current", base}); code != 2 {
		t.Errorf("empty baseline: exit %d, want 2", code)
	}
	// The committed repository baseline itself must parse.
	if _, code := run([]string{"-baseline", "../BENCH_parallel.json", "-current", "../BENCH_parallel.json"}); code != 0 {
		t.Error("committed baseline does not compare clean against itself")
	}
}
