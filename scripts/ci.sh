#!/bin/sh
# ci.sh — the tier-1.5 verification gate (see ROADMAP.md).
#
# Usage:  scripts/ci.sh
#
# Runs, in order:
#   1. gofmt -l        — the tree must be canonically formatted
#   2. go build ./...  — everything compiles
#   3. go vet ./...    — static checks
#   4. go test -race ./...  — full suite under the race detector; this is
#      what keeps internal/par and the shared generator cache race-clean and
#      exercises the serial-vs-parallel determinism tests
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all checks passed"
