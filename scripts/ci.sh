#!/bin/sh
# ci.sh — the tier-1.5 verification gate (see ROADMAP.md). Run locally or
# from .github/workflows/ci.yml, which runs the three stages as parallel
# jobs and uploads each job's ci-artifacts/ on every run.
#
# Usage:  scripts/ci.sh [lint|test|bench|all]
#
# Stages (default: all, the full local gate):
#
#   lint   1. gofmt -l        — the tree must be canonically formatted
#          2. go build ./...  — everything compiles
#          3. go vet ./...    — static checks
#          4. go run ./cmd/nwlint ./...  — the project-invariant analyzer;
#             the tree must be free of diagnostics under all nine rules
#             (determinism, ctxfirst, nogoroutine, errcheck, printbound,
#             scratchconfine, atomicfield, layering, wireparity). The JSON
#             report lands in ci-artifacts/nwlint.json and a `-diff` dry
#             run asserts the tree is fix-clean (no suggested fix left
#             unapplied)
#
#   test   5. go test -race -count=1 ./...  — full suite under the race
#             detector, cache disabled; this is what keeps internal/par,
#             the shared generator cache and the jobs runner race-clean
#             and exercises the serial-vs-parallel determinism tests
#          6. coverage gate — go run ./scripts/covergate enforces
#             per-package statement-coverage floors over
#             internal/{par,code,dataset,obs,engine,jobs,cluster,nwerr,
#             lint,stats,yield}
#
#   bench  7. bench regression — scripts/bench.sh measures a fresh
#             BENCH_parallel.json into ci-artifacts/ and
#             scripts/benchcmp.go compares it against the committed
#             baseline (±20% ns/op). Warns by default; set
#             CI_BENCH_STRICT=1 to fail on regression.
#          8. metrics smoke — nwsim -metrics json must emit a parseable
#             snapshot (saved as ci-artifacts/metrics.json) without
#             touching stdout data
#          9. server smoke — nwserve -smoke starts the HTTP facade on an
#             ephemeral port, exercises one synchronous request plus the
#             full async job lifecycle (submit, poll, results) against
#             itself and shuts down gracefully
#         10. peer smoke — nwserve -peer-smoke starts a two-node
#             in-process fleet, fetches the same experiment twice through
#             the node that does not own its key, and asserts X-Cache:
#             miss-peer then hit-peer
#         11. jobs kill/resume smoke — submits a multi-chunk sweep job
#             through nwsweep -job, SIGKILLs it mid-run, resumes from the
#             checkpoint store and asserts the final dataset is
#             byte-identical to an uninterrupted run; a second resume of
#             the complete job must recompute zero chunks, verified both
#             by the computed=0 accounting line and by the obs
#             jobs/chunks_* counters. The job store is preserved under
#             ci-artifacts/job-smoke/ when the smoke fails.
#         12. distributed jobs smoke — starts two nwserve chunk peers,
#             runs the same sweep job through nwsweep -peers so chunks
#             route over the consistent-hash ring, SIGKILLs one peer
#             mid-job and asserts the job still completes with output
#             byte-identical to a single-node reference run and with a
#             nonzero peer_served count in the ring accounting line. The
#             stores and logs are preserved under ci-artifacts/dist-smoke/
#             when the smoke fails.
#         13. fuzz smoke — 10s of real fuzzing per internal/code fuzz
#             target, auto-discovered from the test files
#
# Every stage ends with a per-step wall-time table (rendered by
# scripts/citimes through internal/dataset). Exits non-zero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

stage="${1:-all}"
case "$stage" in
lint | test | bench | all) ;;
*)
	echo "usage: scripts/ci.sh [lint|test|bench|all]" >&2
	exit 2
	;;
esac

artifacts=ci-artifacts
mkdir -p "$artifacts"
steptimes="$artifacts/step-times.txt"
: >"$steptimes"

# step runs one named gate, echoing a banner and recording its wall time
# for the closing summary table.
step() {
	step_name="$1"
	shift
	echo "== $step_name =="
	step_t0="$(date +%s)"
	"$@"
	step_t1="$(date +%s)"
	echo "$step_name $((step_t1 - step_t0))" >>"$steptimes"
}

# gate runs a command whose report goes to an artifact file, showing the
# report either way and preserving the command's exit status (a plain
# `cmd | tee` would let tee's status mask a failing gate).
gate() {
	outfile="$1"
	shift
	if "$@" >"$outfile"; then
		cat "$outfile"
	else
		status=$?
		cat "$outfile"
		return "$status"
	fi
}

run_gofmt() {
	unformatted="$(gofmt -l .)"
	if [ -n "$unformatted" ]; then
		echo "gofmt: the following files need formatting:" >&2
		echo "$unformatted" >&2
		return 1
	fi
}

run_build() {
	go build ./...
}

run_vet() {
	go vet ./...
}

run_nwlint() {
	gate "$artifacts/nwlint.json" go run ./cmd/nwlint -json ./...
	# Fix-clean dry run: the tree must not carry an unapplied suggested
	# fix. The -json gate above already fails on any diagnostic; here we
	# tolerate the exit status and assert the diff preview is empty.
	diff_out="$(go run ./cmd/nwlint -diff ./... || true)"
	if [ -n "$diff_out" ]; then
		echo "nwlint: tree is not fix-clean; run 'go run ./cmd/nwlint -fix ./...':" >&2
		echo "$diff_out" >&2
		return 1
	fi
}

run_tests() {
	go test -race -count=1 ./...
}

run_cover() {
	gate "$artifacts/coverage.txt" go run ./scripts/covergate
}

run_bench() {
	scripts/bench.sh 50x "$artifacts/bench-current.json" >/dev/null
	gate "$artifacts/benchcmp.txt" go run scripts/benchcmp.go \
		-baseline BENCH_parallel.json \
		-current "$artifacts/bench-current.json"
}

run_metrics_smoke() {
	go run ./cmd/nwsim -exp montecarlo -trials 4 \
		-metrics json -metrics-out "$artifacts/metrics.json" >/dev/null
	test -s "$artifacts/metrics.json"
	go run ./cmd/nwsim -exp montecarlo -trials 4 >"$artifacts/montecarlo-plain.txt"
}

run_server_smoke() {
	go run ./cmd/nwserve -smoke
}

run_peer_smoke() {
	go run ./cmd/nwserve -peer-smoke
}

# jobs_smoke_body is the kill/resume equivalence check. It runs inside
# ci-artifacts/job-smoke so a failure leaves the whole job store in the
# uploaded artifacts; run_jobs_smoke clears the bulky store again on
# success.
jobs_smoke_body() {
	jdir="$1"
	bin="$jdir/nwsweep"
	go build -o "$bin" ./cmd/nwsweep

	# A grid big enough that the run takes seconds even on a fast
	# machine, partitioned into enough chunks that SIGKILL reliably lands
	# with some — but not all — checkpoints written.
	set -- -chunk 256 -format json \
		-types tc,gc,bgc,hc,ahc -lengths 4,6,8,10 \
		-sigmas "$(seq -s, 0.030 0.001 0.080)" \
		-wires "$(seq -s, 10 2 40)"

	echo "-- reference run (uninterrupted)"
	"$bin" -job -job-store "$jdir/ref" "$@" >"$jdir/ref.json" 2>"$jdir/ref.err"
	cat "$jdir/ref.err"
	id="$(sed -n 's/^nwsweep: job \(j-[0-9a-f]*\) submitted.*/\1/p' "$jdir/ref.err")"
	total="$(sed -n 's/^nwsweep: job .* in \([0-9]*\) chunks$/\1/p' "$jdir/ref.err")"
	if [ -z "$id" ] || [ -z "$total" ] || [ "$total" -lt 10 ]; then
		echo "jobs smoke: reference run did not report a usable job (id=$id chunks=$total)" >&2
		return 1
	fi

	echo "-- interrupted run (SIGKILL mid-job)"
	"$bin" -job -job-store "$jdir/kill" "$@" >"$jdir/kill.json" 2>"$jdir/kill.err" &
	pid=$!
	# The job id is content-addressed, so the killed run writes to the
	# same id the reference reported. Kill once at least two chunks are
	# checkpointed; fail if the job finishes before the signal lands.
	i=0
	while [ "$i" -lt 400 ]; do
		n="$(ls "$jdir/kill/$id"/chunk-*.json 2>/dev/null | wc -l)"
		if [ "$n" -ge 2 ]; then
			break
		fi
		if ! kill -0 "$pid" 2>/dev/null; then
			break
		fi
		i=$((i + 1))
		sleep 0.05
	done
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "jobs smoke: job finished before it could be killed; grow the grid" >&2
		return 1
	fi
	kill -9 "$pid" 2>/dev/null
	wait "$pid" 2>/dev/null || true
	stored="$(ls "$jdir/kill/$id"/chunk-*.json 2>/dev/null | wc -l)"
	echo "killed job $id with $stored of $total chunks checkpointed"
	if [ "$stored" -lt 1 ] || [ "$stored" -ge "$total" ]; then
		echo "jobs smoke: kill landed outside the resumable window ($stored of $total chunks)" >&2
		return 1
	fi

	echo "-- resume"
	"$bin" -resume "$id" -job-store "$jdir/kill" -format json \
		>"$jdir/resumed.json" 2>"$jdir/resumed.err"
	cat "$jdir/resumed.err"
	if ! grep -q "resumed=" "$jdir/resumed.err" || grep -q "resumed=0$" "$jdir/resumed.err"; then
		echo "jobs smoke: resumed run served no chunks from checkpoints" >&2
		return 1
	fi
	if ! cmp -s "$jdir/ref.json" "$jdir/resumed.json"; then
		echo "jobs smoke: resumed output differs from the uninterrupted run" >&2
		return 1
	fi

	echo "-- resume of the complete job (must recompute nothing)"
	"$bin" -resume "$id" -job-store "$jdir/kill" -format json \
		-metrics csv -metrics-out "$jdir/metrics.csv" \
		>"$jdir/complete.json" 2>"$jdir/complete.err"
	cat "$jdir/complete.err"
	if ! grep -q "complete: chunks=$total computed=0 resumed=$total" "$jdir/complete.err"; then
		echo "jobs smoke: resume of a complete job recomputed chunks" >&2
		return 1
	fi
	# The obs counters must agree with the accounting line: every chunk
	# resumed, none computed (the computed counter is never even created
	# on a zero-recompute run).
	if ! grep -q "^jobs/chunks_resumed,counter,$total$" "$jdir/metrics.csv"; then
		echo "jobs smoke: jobs/chunks_resumed counter is not $total:" >&2
		grep "^jobs/" "$jdir/metrics.csv" >&2 || true
		return 1
	fi
	if grep "^jobs/chunks_computed," "$jdir/metrics.csv" | grep -qv ",0$"; then
		echo "jobs smoke: jobs/chunks_computed counter is nonzero:" >&2
		grep "^jobs/" "$jdir/metrics.csv" >&2
		return 1
	fi
	if ! cmp -s "$jdir/ref.json" "$jdir/complete.json"; then
		echo "jobs smoke: complete-job read differs from the uninterrupted run" >&2
		return 1
	fi
	echo "kill/resume equivalence holds: $stored checkpointed chunks survived the kill, output byte-identical"
}

run_jobs_smoke() {
	jdir="$artifacts/job-smoke"
	rm -rf "$jdir"
	mkdir -p "$jdir"
	if ! jobs_smoke_body "$jdir"; then
		echo "jobs smoke: FAILED; job store preserved in $jdir for the artifact upload" >&2
		return 1
	fi
	# Success: drop the bulky stores and datasets, keep the logs.
	rm -rf "$jdir/ref" "$jdir/kill" "$jdir/nwsweep"
	rm -f "$jdir"/*.json
}

# dist_smoke_body is the three-node distributed-job check: nwsweep is
# ring node a, two nwserve processes are chunk peers b and c, and c is
# SIGKILLed mid-job. Completion with byte-identical output is the
# observable form of the executor's failover contract: every peer
# failure degrades to local compute, never to a failed or wrong job.
dist_smoke_body() {
	ddir="$1"
	sweepbin="$ddir/nwsweep"
	servebin="$ddir/nwserve"
	go build -o "$sweepbin" ./cmd/nwsweep
	go build -o "$servebin" ./cmd/nwserve

	# Enough chunks that the kill lands mid-job and every ring node owns
	# a meaningful share.
	set -- -chunk 64 -format json \
		-types tc,gc,hc -lengths 4,6,8 \
		-sigmas "$(seq -s, 0.030 0.001 0.060)" \
		-wires "$(seq -s, 10 2 30)"

	echo "-- reference run (single node)"
	"$sweepbin" -job -job-store "$ddir/ref" "$@" >"$ddir/ref.json" 2>"$ddir/ref.err"
	cat "$ddir/ref.err"
	id="$(sed -n 's/^nwsweep: job \(j-[0-9a-f]*\) submitted.*/\1/p' "$ddir/ref.err")"
	total="$(sed -n 's/^nwsweep: job .* in \([0-9]*\) chunks$/\1/p' "$ddir/ref.err")"
	if [ -z "$id" ] || [ -z "$total" ] || [ "$total" -lt 10 ]; then
		echo "dist smoke: reference run did not report a usable job (id=$id chunks=$total)" >&2
		return 1
	fi

	echo "-- start chunk peers b and c"
	"$servebin" -addr 127.0.0.1:0 -node-id b 2>"$ddir/b.err" &
	bpid=$!
	echo "$bpid" >"$ddir/b.pid"
	"$servebin" -addr 127.0.0.1:0 -node-id c 2>"$ddir/c.err" &
	cpid=$!
	echo "$cpid" >"$ddir/c.pid"
	burl=""
	curl=""
	i=0
	while [ "$i" -lt 100 ]; do
		burl="$(sed -n 's|^nwserve: listening on \(http://.*\)$|\1|p' "$ddir/b.err")"
		curl="$(sed -n 's|^nwserve: listening on \(http://.*\)$|\1|p' "$ddir/c.err")"
		if [ -n "$burl" ] && [ -n "$curl" ]; then
			break
		fi
		i=$((i + 1))
		sleep 0.05
	done
	if [ -z "$burl" ] || [ -z "$curl" ]; then
		echo "dist smoke: peers never reported their listen addresses" >&2
		return 1
	fi
	echo "peers: b=$burl c=$curl"

	echo "-- distributed run (SIGKILL node c mid-job)"
	"$sweepbin" -job -job-store "$ddir/dist" -node-id a -peers "b=$burl,c=$curl" "$@" \
		>"$ddir/dist.json" 2>"$ddir/dist.err" &
	spid=$!
	i=0
	while [ "$i" -lt 400 ]; do
		n="$(ls "$ddir/dist/$id"/chunk-*.json 2>/dev/null | wc -l)"
		if [ "$n" -ge 2 ]; then
			break
		fi
		if ! kill -0 "$spid" 2>/dev/null; then
			break
		fi
		i=$((i + 1))
		sleep 0.05
	done
	if ! kill -0 "$spid" 2>/dev/null; then
		echo "dist smoke: job finished before node c could be killed; grow the grid" >&2
		return 1
	fi
	kill -9 "$cpid" 2>/dev/null
	wait "$cpid" 2>/dev/null || true
	echo "killed node c with $n of $total chunks checkpointed"
	if ! wait "$spid"; then
		echo "dist smoke: distributed job failed after the peer kill:" >&2
		cat "$ddir/dist.err" >&2
		return 1
	fi
	cat "$ddir/dist.err"

	if ! cmp -s "$ddir/ref.json" "$ddir/dist.json"; then
		echo "dist smoke: distributed output differs from the single-node run" >&2
		return 1
	fi
	served="$(sed -n 's/^nwsweep: ring a: .*peer_served=\([0-9]*\).*/\1/p' "$ddir/dist.err")"
	if [ -z "$served" ] || [ "$served" -eq 0 ]; then
		echo "dist smoke: ring accounting shows no peer-served chunks:" >&2
		grep '^nwsweep: ring' "$ddir/dist.err" >&2 || true
		return 1
	fi
	echo "distributed equivalence holds: $served chunks peer-served, node-c kill absorbed, output byte-identical"
}

run_dist_smoke() {
	ddir="$artifacts/dist-smoke"
	rm -rf "$ddir"
	mkdir -p "$ddir"
	status=0
	dist_smoke_body "$ddir" || status=$?
	# Always reap the peer servers, success or failure.
	for f in "$ddir"/b.pid "$ddir"/c.pid; do
		if [ -f "$f" ]; then
			kill -9 "$(cat "$f")" 2>/dev/null || true
			wait "$(cat "$f")" 2>/dev/null || true
		fi
	done
	if [ "$status" -ne 0 ]; then
		echo "dist smoke: FAILED; stores preserved in $ddir for the artifact upload" >&2
		return "$status"
	fi
	rm -rf "$ddir/ref" "$ddir/dist" "$ddir/nwsweep" "$ddir/nwserve"
	rm -f "$ddir"/*.json "$ddir"/*.pid
}

run_fuzz_smoke() {
	targets="$(grep -hEo '^func Fuzz[A-Za-z0-9_]*' internal/code/*_test.go | awk '{print $2}' | sort)"
	if [ -z "$targets" ]; then
		echo "fuzz smoke: no Fuzz targets found in internal/code" >&2
		return 1
	fi
	for target in $targets; do
		echo "-- $target"
		go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s ./internal/code
	done
}

if [ "$stage" = "lint" ] || [ "$stage" = "all" ]; then
	step "gofmt" run_gofmt
	step "go build" run_build
	step "go vet" run_vet
	step "nwlint" run_nwlint
fi

if [ "$stage" = "test" ] || [ "$stage" = "all" ]; then
	step "go test -race" run_tests
	step "coverage gate" run_cover
fi

if [ "$stage" = "bench" ] || [ "$stage" = "all" ]; then
	step "bench regression" run_bench
	step "metrics smoke" run_metrics_smoke
	step "server smoke" run_server_smoke
	step "peer smoke" run_peer_smoke
	step "jobs kill/resume smoke" run_jobs_smoke
	step "distributed jobs smoke" run_dist_smoke
	step "fuzz smoke" run_fuzz_smoke
fi

echo "== step timing =="
go run ./scripts/citimes <"$steptimes"

echo "ci: $stage checks passed"
