#!/bin/sh
# ci.sh — the tier-1.5 verification gate (see ROADMAP.md). Run locally or
# from .github/workflows/ci.yml, which uploads ci-artifacts/ on every run.
#
# Usage:  scripts/ci.sh
#
# Runs, in order:
#   1. gofmt -l        — the tree must be canonically formatted
#   2. go build ./...  — everything compiles
#   3. go vet ./...    — static checks
#   4. go run ./cmd/nwlint ./...  — the project-invariant analyzer; the
#      tree must be free of diagnostics under all nine rules
#      (determinism, ctxfirst, nogoroutine, errcheck, printbound,
#      scratchconfine, atomicfield, layering, wireparity). The JSON
#      report lands in ci-artifacts/nwlint.json, the lint wall time is
#      printed, and a `-diff` dry run asserts the tree is fix-clean
#      (no suggested fix left unapplied)
#   5. go test -race -count=1 ./...  — full suite under the race detector,
#      cache disabled; this is what keeps internal/par and the shared
#      generator cache race-clean and exercises the serial-vs-parallel
#      determinism tests
#   6. coverage gate — go run ./scripts/covergate enforces per-package
#      statement-coverage floors over
#      internal/{par,code,dataset,obs,engine,cluster,nwerr,lint,stats,yield}
#   7. bench regression — scripts/bench.sh measures a fresh
#      BENCH_parallel.json into ci-artifacts/ and scripts/benchcmp.go
#      compares it against the committed baseline (±20% ns/op). Warns by
#      default; set CI_BENCH_STRICT=1 to fail on regression.
#   8. metrics smoke — nwsim -metrics json must emit a parseable snapshot
#      (saved as ci-artifacts/metrics.json) without touching stdout data
#   9. server smoke — nwserve -smoke starts the HTTP facade on an
#      ephemeral port, issues one /v1/experiment request against itself
#      and shuts down gracefully
#  10. peer smoke — nwserve -peer-smoke starts a two-node in-process
#      fleet, fetches the same experiment twice through the node that
#      does not own its key, and asserts X-Cache: miss-peer then
#      hit-peer (the consistent-hash routing + owner-cache contract)
#  11. fuzz smoke — 10s of real fuzzing per internal/code fuzz target,
#      auto-discovered from the test files (the fuzz engine accepts one
#      target per invocation)
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

artifacts=ci-artifacts
mkdir -p "$artifacts"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

# gate runs a command whose report goes to an artifact file, showing the
# report either way and preserving the command's exit status (a plain
# `cmd | tee` would let tee's status mask a failing gate).
gate() {
	outfile="$1"
	shift
	if "$@" > "$outfile"; then
		cat "$outfile"
	else
		status=$?
		cat "$outfile"
		return "$status"
	fi
}

echo "== nwlint =="
lint_start="$(date +%s)"
gate "$artifacts/nwlint.json" go run ./cmd/nwlint -json ./...
# Fix-clean dry run: the tree must not carry an unapplied suggested fix.
# The -json gate above already fails on any diagnostic; here we tolerate
# the exit status and assert the diff preview is empty.
diff_out="$(go run ./cmd/nwlint -diff ./... || true)"
if [ -n "$diff_out" ]; then
	echo "nwlint: tree is not fix-clean; run 'go run ./cmd/nwlint -fix ./...':" >&2
	echo "$diff_out" >&2
	exit 1
fi
lint_end="$(date +%s)"
echo "nwlint: wall time $((lint_end - lint_start))s"

echo "== go test -race =="
go test -race -count=1 ./...

echo "== coverage gate =="
gate "$artifacts/coverage.txt" go run ./scripts/covergate

echo "== bench regression =="
scripts/bench.sh 50x "$artifacts/bench-current.json" > /dev/null
gate "$artifacts/benchcmp.txt" go run scripts/benchcmp.go \
	-baseline BENCH_parallel.json \
	-current "$artifacts/bench-current.json"

echo "== metrics smoke =="
go run ./cmd/nwsim -exp montecarlo -trials 4 \
	-metrics json -metrics-out "$artifacts/metrics.json" > /dev/null
test -s "$artifacts/metrics.json"
go run ./cmd/nwsim -exp montecarlo -trials 4 > "$artifacts/montecarlo-plain.txt"

echo "== server smoke =="
go run ./cmd/nwserve -smoke

echo "== peer smoke =="
go run ./cmd/nwserve -peer-smoke

echo "== fuzz smoke =="
targets="$(grep -hEo '^func Fuzz[A-Za-z0-9_]*' internal/code/*_test.go | awk '{print $2}' | sort)"
if [ -z "$targets" ]; then
	echo "fuzz smoke: no Fuzz targets found in internal/code" >&2
	exit 1
fi
for target in $targets; do
	echo "-- $target"
	go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s ./internal/code
done

echo "ci: all checks passed"
