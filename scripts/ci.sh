#!/bin/sh
# ci.sh — the tier-1.5 verification gate (see ROADMAP.md).
#
# Usage:  scripts/ci.sh
#
# Runs, in order:
#   1. gofmt -l        — the tree must be canonically formatted
#   2. go build ./...  — everything compiles
#   3. go vet ./...    — static checks
#   4. go run ./cmd/nwlint ./...  — the project-invariant analyzer; the
#      tree must be free of determinism, ctxfirst, nogoroutine, errcheck
#      and printbound diagnostics
#   5. go test -race -count=1 ./...  — full suite under the race detector,
#      cache disabled; this is what keeps internal/par and the shared
#      generator cache race-clean and exercises the serial-vs-parallel
#      determinism tests
#   6. fuzz smoke — 10s of real fuzzing per internal/code generator
#      harness (the fuzz engine accepts one target per invocation)
#
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== nwlint =="
go run ./cmd/nwlint ./...

echo "== go test -race =="
go test -race -count=1 ./...

echo "== fuzz smoke =="
for target in FuzzGrayAdjacency FuzzBalancedGraySequence FuzzTreeRoundTrip; do
	echo "-- $target"
	go test -run '^$' -fuzz "^${target}\$" -fuzztime 10s ./internal/code
done

echo "ci: all checks passed"
