// Command covergate is the coverage gate of scripts/ci.sh: it runs
// `go test -cover` over the gated packages, renders the per-package
// results as a dataset table and fails when any package drops below its
// committed floor. Floors start at the coverage level each package had
// when it entered the gate (rounded down a little to absorb counting
// noise from refactors); raise them as coverage grows, never lower them
// to make a red build green.
//
// Usage:
//
//	go run ./scripts/covergate [-format text|json|csv|md]
//
// Exit codes: 0 all floors met, 1 a package is below its floor (or lost
// its coverage line), 2 usage error or go-test failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"

	"nwdec/internal/dataset"
)

// gated lists the packages under the gate with their coverage floors in
// percent. Order is the render order.
var gated = []struct {
	pkg   string
	floor float64
}{
	{"nwdec/internal/par", 80.0},
	{"nwdec/internal/code", 95.0},
	{"nwdec/internal/dataset", 90.0},
	{"nwdec/internal/obs", 85.0},
	{"nwdec/internal/engine", 70.0},
	{"nwdec/internal/jobs", 82.0},
	{"nwdec/internal/cluster", 85.0},
	{"nwdec/internal/nwerr", 70.0},
	{"nwdec/internal/lint", 80.0},
	{"nwdec/internal/stats", 95.0},
	{"nwdec/internal/yield", 95.0},
}

// coverageLine matches one `go test -cover` result line, e.g.
// "ok  	nwdec/internal/par	0.003s	coverage: 81.4% of statements".
var coverageLine = regexp.MustCompile(`(?m)^ok\s+(\S+)\s+\S+\s+coverage: ([0-9.]+)% of statements`)

func main() {
	format := flag.String("format", "text", "table rendering: "+dataset.Formats())
	flag.Parse()
	f, err := dataset.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	args := []string{"test", "-cover", "-count=1"}
	for _, g := range gated {
		args = append(args, g.pkg)
	}
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: go test failed: %v\n%s", err, out)
		os.Exit(2)
	}

	measured := make(map[string]float64)
	for _, m := range coverageLine.FindAllStringSubmatch(string(out), -1) {
		pct, perr := strconv.ParseFloat(m[2], 64)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "covergate: parsing %q: %v\n", m[0], perr)
			os.Exit(2)
		}
		measured[m[1]] = pct
	}

	ds := dataset.New("coverage", "Statement coverage vs committed floors",
		dataset.Col("package", dataset.String),
		dataset.ColUnit("coverage", "%", dataset.Float),
		dataset.ColUnit("floor", "%", dataset.Float),
		dataset.Col("status", dataset.String),
	)
	failures := 0
	for _, g := range gated {
		pct, ok := measured[g.pkg]
		status := "ok"
		switch {
		case !ok:
			status = "MISSING"
			failures++
		case pct < g.floor:
			status = "BELOW FLOOR"
			failures++
		}
		ds.AddRow(g.pkg, pct, g.floor, status)
	}
	if err := ds.Render(os.Stdout, f); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "covergate: %d package(s) below their coverage floor\n", failures)
		os.Exit(1)
	}
	fmt.Printf("covergate: %d packages at or above their floors\n", len(gated))
}
