// Command benchcmp is the benchmark-regression gate: it compares a fresh
// BENCH_parallel.json (see scripts/bench.sh) against the committed
// baseline and flags benchmarks whose ns/op or allocs/op moved by more
// than the threshold. By default regressions only warn — benchmark noise
// on shared CI hosts is real — but with -strict (or CI_BENCH_STRICT=1 in
// the environment) a regression fails the build. Benchmarks present in
// only one of the two files are reported but never fail the gate.
//
// Usage:
//
//	go run scripts/benchcmp.go -baseline BENCH_parallel.json -current bench-new.json [-threshold 0.20] [-strict]
//
// Exit codes: 0 ok (or warn-only regressions), 1 regression under -strict,
// 2 usage or unreadable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// benchEntry is one row of the bench.sh JSON array. The metadata object
// sets Meta and is skipped during comparison.
type benchEntry struct {
	Meta        bool    `json:"meta"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// comparison is the verdict for one benchmark present in both files. Wall
// clock and allocation count are gated independently: an allocation
// regression is a real regression even when it hides inside the ns/op
// noise band (small allocs are cheap until the GC bill arrives).
type comparison struct {
	Name                string
	Base, Cur           float64
	Delta               float64 // (cur-base)/base ns/op
	Regression          bool
	AllocBase, AllocCur float64
	AllocDelta          float64 // (cur-base)/base allocs/op
	AllocRegression     bool
}

func main() {
	report, code := run(os.Args[1:])
	fmt.Print(report)
	os.Exit(code)
}

// run is the testable entry point: it returns the full report text and
// the process exit code.
func run(args []string) (string, int) {
	var sb strings.Builder
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(&sb)
	var (
		baseline  = fs.String("baseline", "BENCH_parallel.json", "committed baseline JSON")
		current   = fs.String("current", "", "freshly measured JSON to compare (required)")
		threshold = fs.Float64("threshold", 0.20, "relative ns/op change that counts as a regression")
		strict    = fs.Bool("strict", os.Getenv("CI_BENCH_STRICT") == "1", "exit non-zero on regression (default: warn only; CI_BENCH_STRICT=1 sets this)")
	)
	if err := fs.Parse(args); err != nil {
		return sb.String(), 2
	}
	if *current == "" || *threshold <= 0 {
		sb.WriteString("benchcmp: -current is required and -threshold must be positive\n")
		fs.Usage()
		return sb.String(), 2
	}
	base, err := loadBench(*baseline)
	if err != nil {
		fmt.Fprintf(&sb, "benchcmp: %v\n", err)
		return sb.String(), 2
	}
	cur, err := loadBench(*current)
	if err != nil {
		fmt.Fprintf(&sb, "benchcmp: %v\n", err)
		return sb.String(), 2
	}

	comps, onlyBase, onlyCur := compare(base, cur, *threshold)
	regressions := 0
	fmt.Fprintf(&sb, "%-45s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs", "delta")
	for _, c := range comps {
		mark := ""
		if c.Regression {
			mark = "  << REGRESSION"
			regressions++
		}
		if c.AllocRegression {
			mark += "  << ALLOC-REGRESSION"
			regressions++
		}
		fmt.Fprintf(&sb, "%-45s %14.0f %14.0f %+7.1f%% %12.0f %12.0f %+7.1f%%%s\n",
			c.Name, c.Base, c.Cur, 100*c.Delta, c.AllocBase, c.AllocCur, 100*c.AllocDelta, mark)
	}
	for _, name := range onlyBase {
		fmt.Fprintf(&sb, "%-45s only in baseline (benchmark removed?)\n", name)
	}
	for _, name := range onlyCur {
		fmt.Fprintf(&sb, "%-45s only in current (new benchmark; commit a fresh baseline)\n", name)
	}

	switch {
	case regressions == 0:
		fmt.Fprintf(&sb, "benchcmp: %d benchmarks within %.0f%% of baseline\n", len(comps), 100**threshold)
		return sb.String(), 0
	case *strict:
		fmt.Fprintf(&sb, "benchcmp: %d regression(s) beyond %.0f%% (strict mode)\n", regressions, 100**threshold)
		return sb.String(), 1
	default:
		fmt.Fprintf(&sb, "benchcmp: WARNING: %d regression(s) beyond %.0f%% (not failing: strict mode off)\n", regressions, 100**threshold)
		return sb.String(), 0
	}
}

// loadBench reads one bench.sh JSON file, dropping the metadata object.
func loadBench(path string) (map[string]benchEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := make(map[string]benchEntry, len(entries))
	for _, e := range entries {
		if e.Meta || e.Name == "" {
			continue
		}
		out[e.Name] = e
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s holds no benchmark entries", path)
	}
	return out, nil
}

// compare pairs the two runs by benchmark name. A regression is a ns/op or
// allocs/op increase beyond the threshold; improvements beyond the
// threshold show in the delta columns but never fail the gate. Benchmarks
// present in only one file warn in the report and never fail it — adding a
// benchmark must not require regenerating the baseline atomically, and a
// removed one is a review question, not a perf gate's.
func compare(base, cur map[string]benchEntry, threshold float64) (comps []comparison, onlyBase, onlyCur []string) {
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			onlyBase = append(onlyBase, name)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		allocDelta := 0.0
		if b.AllocsPerOp > 0 {
			allocDelta = (c.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
		}
		comps = append(comps, comparison{
			Name:            name,
			Base:            b.NsPerOp,
			Cur:             c.NsPerOp,
			Delta:           delta,
			Regression:      delta > threshold,
			AllocBase:       b.AllocsPerOp,
			AllocCur:        c.AllocsPerOp,
			AllocDelta:      allocDelta,
			AllocRegression: allocDelta > threshold,
		})
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			onlyCur = append(onlyCur, name)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Name < comps[j].Name })
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)
	return comps, onlyBase, onlyCur
}
