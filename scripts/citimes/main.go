// Command citimes renders the per-step timing summary of a ci.sh run: it
// reads "name seconds" lines on stdin (one per completed CI step, in run
// order) and prints them as a dataset table with a trailing total row, so
// the slowest gate of the pipeline is visible at a glance in every CI
// log without spelunking through timestamps.
//
// Usage:
//
//	scripts/ci.sh records step times, then:  go run ./scripts/citimes < times.txt
//
// Exit codes: 0 on success, 2 on a malformed input line or usage error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nwdec/internal/dataset"
)

func main() {
	format := flag.String("format", "text", "table rendering: "+dataset.Formats())
	flag.Parse()
	f, err := dataset.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "citimes:", err)
		os.Exit(2)
	}

	ds := dataset.New("ci-times", "CI step wall times",
		dataset.Col("step", dataset.String),
		dataset.ColUnit("wall", "s", dataset.Float),
	)
	total := 0.0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			fmt.Fprintf(os.Stderr, "citimes: malformed line %q (want: name seconds)\n", line)
			os.Exit(2)
		}
		secs, perr := strconv.ParseFloat(fields[len(fields)-1], 64)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "citimes: malformed line %q: %v\n", line, perr)
			os.Exit(2)
		}
		ds.AddRow(strings.Join(fields[:len(fields)-1], " "), secs)
		total += secs
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "citimes:", err)
		os.Exit(2)
	}
	ds.AddRow("total", total)
	if err := ds.Render(os.Stdout, f); err != nil {
		fmt.Fprintln(os.Stderr, "citimes:", err)
		os.Exit(2)
	}
}
