package nwdec

// End-to-end integration tests: each test drives the complete pipeline —
// code generation, doping plan, fabrication-flow replay, layout, analytic
// yield, Monte-Carlo fabrication, functional memory operation — through the
// public package APIs, the way the examples and CLIs use them.

import (
	"context"
	"math"
	"strings"
	"testing"

	"nwdec/internal/code"
	"nwdec/internal/core"
	"nwdec/internal/crossbar"
	"nwdec/internal/experiments"
	"nwdec/internal/report"
	"nwdec/internal/stats"
	"nwdec/internal/yield"
)

func TestEndToEndDesignFabricateOperate(t *testing.T) {
	for _, tp := range code.AllTypes() {
		m := 10
		if !tp.Reflected() {
			m = 6
		}
		design, err := core.NewDesign(core.Config{CodeType: tp, CodeLength: m})
		if err != nil {
			t.Fatalf("%v: design: %v", tp, err)
		}
		// The matrix algebra and the physical flow must agree.
		if err := design.Plan.Verify(); err != nil {
			t.Fatalf("%v: flow verification: %v", tp, err)
		}
		// The decoder must uniquely address every wire nominally.
		dec, err := crossbar.NewDecoder(design.Plan, design.Quantizer)
		if err != nil {
			t.Fatalf("%v: decoder: %v", tp, err)
		}
		if err := crossbar.VerifyDecoder(dec, design.Layout.Contact); err != nil {
			t.Fatalf("%v: uniqueness: %v", tp, err)
		}
		// Fabricate and operate a memory.
		rng := stats.NewRNG(77)
		rows, err := crossbar.BuildLayer(dec, design.Layout.Contact, design.Layout.WiresPerLayer,
			design.Config.SigmaT, rng)
		if err != nil {
			t.Fatalf("%v: rows: %v", tp, err)
		}
		cols, err := crossbar.BuildLayer(dec, design.Layout.Contact, design.Layout.WiresPerLayer,
			design.Config.SigmaT, rng)
		if err != nil {
			t.Fatalf("%v: cols: %v", tp, err)
		}
		mem := crossbar.NewMemory(rows, cols)
		lm := crossbar.NewLogicalMemory(mem)
		if lm.Capacity() == 0 {
			t.Fatalf("%v: fabricated memory has no usable bits", tp)
		}
		payload := []byte("integration")
		if err := lm.StoreBytes(0, payload); err != nil {
			t.Fatalf("%v: store: %v", tp, err)
		}
		back, err := lm.LoadBytes(0, len(payload))
		if err != nil {
			t.Fatalf("%v: load: %v", tp, err)
		}
		if string(back) != string(payload) {
			t.Fatalf("%v: payload corrupted: %q", tp, back)
		}
		// MC usable fraction within a sane band of the analytic value.
		if diff := math.Abs(mem.UsableFraction() - design.Yield()*design.Yield()); diff > 0.15 {
			t.Errorf("%v: MC fraction %.2f far from analytic %.2f",
				tp, mem.UsableFraction(), design.Yield()*design.Yield())
		}
	}
}

func TestEndToEndOptimizerAgreesWithFig8(t *testing.T) {
	best, err := core.Optimize(context.Background(), core.Config{}, code.AllTypes(), []int{4, 6, 8, 10}, core.MinBitArea)
	if err != nil {
		t.Fatal(err)
	}
	points, err := experiments.Fig8(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	min := experiments.Fig8MinBitArea(points)
	if best.Config.CodeType != min.Type || best.Config.CodeLength != min.Length {
		t.Errorf("optimizer chose %v M=%d, Fig. 8 minimum is %v M=%d",
			best.Config.CodeType, best.Config.CodeLength, min.Type, min.Length)
	}
	if math.Abs(best.BitArea()-min.BitArea) > 1e-9 {
		t.Errorf("bit areas disagree: %g vs %g", best.BitArea(), min.BitArea)
	}
}

func TestEndToEndReportIsSelfConsistent(t *testing.T) {
	opt := report.DefaultOptions()
	opt.MCTrials = 1
	doc, err := report.Generate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Every figure section must be present and no claim may fail.
	for _, section := range []string{"Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Headline"} {
		if !strings.Contains(doc, section) {
			t.Errorf("report missing section %s", section)
		}
	}
	if strings.Contains(doc, "✘") || strings.Contains(doc, "WARNING") {
		t.Error("report contains failures")
	}
}

func TestEndToEndAnalyticPipelineConsistency(t *testing.T) {
	// Rebuild the Fig. 7 BGC M=10 point from the raw packages and compare
	// with the experiment harness output.
	design, err := core.NewDesign(core.Config{CodeType: code.TypeBalancedGray, CodeLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	a := yield.Analyzer{SigmaT: design.Config.SigmaT,
		Margin: design.Quantizer.Margin() * design.Config.MarginFactor}
	manual := a.AnalyzeCrossbar(design.Plan, design.Layout)
	points, err := experiments.Fig7(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Type == code.TypeBalancedGray && p.Length == 10 {
			if math.Abs(p.Yield-manual.Yield) > 1e-12 {
				t.Errorf("harness yield %g != manual %g", p.Yield, manual.Yield)
			}
			if math.Abs(p.BitArea-manual.BitArea) > 1e-9 {
				t.Errorf("harness area %g != manual %g", p.BitArea, manual.BitArea)
			}
			return
		}
	}
	t.Fatal("BGC M=10 point missing from Fig. 7")
}

func TestEndToEndDeterminism(t *testing.T) {
	// The whole Monte-Carlo pipeline must be bit-reproducible from a seed.
	run := func() float64 {
		pts, err := experiments.MonteCarlo(core.Config{}, 2, 123)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range pts {
			sum += p.MC
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Errorf("Monte-Carlo pipeline not deterministic: %g vs %g", a, b)
	}
}
