module nwdec

go 1.22
